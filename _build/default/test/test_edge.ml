(* Edge cases across the stack: degenerate systems, simultaneous timestamps,
   extreme weights, alternative topologies, adversarial timing. *)

open Tact_sim
open Tact_store
open Tact_core
open Tact_replica

let feq a b = Float.abs (a -. b) < 1e-9

let unit_w conit = { Write.conit; nweight = 1.0; oweight = 1.0 }

(* --- Degenerate systems -------------------------------------------------- *)

let test_single_replica_strong_is_free () =
  let config =
    { Config.default with Config.conits = [ Conit.declare ~ne_bound:0.0 "c" ] }
  in
  let sys =
    System.create ~topology:(Topology.uniform ~n:1 ~latency:0.0 ~bandwidth:1e6)
      ~config ()
  in
  let r = System.replica sys 0 in
  let served = ref false in
  Replica.submit_write r ~deps:[ ("c", Bounds.strong) ] ~affects:[ unit_w "c" ]
    ~op:(Op.Add ("x", 1.0))
    ~k:(fun _ ->
      Replica.submit_read r ~deps:[ ("c", Bounds.strong) ]
        ~f:(fun db -> Db.get db "x")
        ~k:(fun v ->
          served := true;
          Alcotest.(check bool) "sees own write" true (feq (Value.to_float v) 1.0)));
  System.run ~until:10.0 sys;
  Alcotest.(check bool) "served instantly" true !served;
  Alcotest.(check int) "no network traffic" 0 (System.traffic sys).Net.messages;
  Alcotest.(check bool) "no violations" true (Verify.check ~lcp:true sys = [])

let test_empty_workload () =
  let sys =
    System.create ~topology:(Topology.uniform ~n:3 ~latency:0.04 ~bandwidth:1e6)
      ~config:{ Config.default with Config.antientropy_period = Some 1.0 }
      ()
  in
  System.run ~until:10.0 sys;
  Alcotest.(check int) "no writes" 0 (System.write_count sys);
  Alcotest.(check bool) "trivially converged" true (System.converged sys);
  Alcotest.(check bool) "gossip still flowed" true ((System.traffic sys).Net.messages > 0)

let test_zero_latency_network () =
  let config = { Config.default with Config.conits = [ Conit.declare "c" ] } in
  let sys =
    System.create ~jitter:0.0
      ~topology:(Topology.uniform ~n:3 ~latency:0.0 ~bandwidth:1e12)
      ~config ()
  in
  let engine = System.engine sys in
  let served = ref false in
  Engine.schedule engine ~delay:1.0 (fun () ->
      Replica.submit_write (System.replica sys 0) ~deps:[] ~affects:[ unit_w "c" ]
        ~op:(Op.Add ("x", 1.0)) ~k:ignore);
  Engine.schedule engine ~delay:2.0 (fun () ->
      Replica.submit_read (System.replica sys 1)
        ~deps:[ ("c", Bounds.strong) ]
        ~f:(fun db -> Db.get db "x")
        ~k:(fun v ->
          served := true;
          Alcotest.(check bool) "strong read over zero-latency net" true
            (feq (Value.to_float v) 1.0)));
  System.run ~until:30.0 sys;
  Alcotest.(check bool) "served" true !served;
  Alcotest.(check bool) "no violations" true (Verify.check sys = [])

(* --- Simultaneous accept times ------------------------------------------- *)

let test_simultaneous_writes_tiebreak () =
  (* All writes at the exact same instant: the canonical order tie-breaks by
     origin, every replica converges to the same order, and stability's
     strict tie-break never commits prematurely. *)
  let config = { Config.default with Config.antientropy_period = Some 0.5 } in
  let sys =
    System.create ~jitter:0.0
      ~topology:(Topology.uniform ~n:3 ~latency:0.01 ~bandwidth:1e9)
      ~config ()
  in
  let engine = System.engine sys in
  for i = 0 to 2 do
    Engine.schedule engine ~delay:1.0 (fun () ->
        Replica.submit_write (System.replica sys i) ~deps:[]
          ~affects:[ unit_w "c" ]
          ~op:(Op.Append ("log", Value.Int i))
          ~k:ignore)
  done;
  System.run ~until:60.0 sys;
  Alcotest.(check bool) "converged" true (System.converged sys);
  let committed r =
    List.map
      (fun (w : Write.t) -> w.Write.id.Write.origin)
      (Wlog.committed (Replica.log (System.replica sys r)))
  in
  Alcotest.(check (list int)) "origin order under ties" [ 0; 1; 2 ] (committed 0);
  Alcotest.(check bool) "same everywhere" true
    (committed 0 = committed 1 && committed 1 = committed 2)

(* --- Extreme weights ------------------------------------------------------- *)

let test_zero_weight_write_ignores_budget () =
  (* A write with zero weight on a zero-bound conit returns immediately: it
     does not affect the conit at all (Section 3.2's definition). *)
  let config =
    { Config.default with Config.conits = [ Conit.declare ~ne_bound:0.0 "c" ] }
  in
  let sys =
    System.create ~topology:(Topology.uniform ~n:3 ~latency:0.05 ~bandwidth:1e6)
      ~config ()
  in
  let engine = System.engine sys in
  let returned_at = ref nan in
  Engine.schedule engine ~delay:1.0 (fun () ->
      Replica.submit_write (System.replica sys 0) ~deps:[]
        ~affects:[ { Write.conit = "c"; nweight = 0.0; oweight = 0.0 } ]
        ~op:(Op.Add ("x", 1.0))
        ~k:(fun _ -> returned_at := Engine.now engine));
  System.run ~until:30.0 sys;
  Alcotest.(check bool) "returned without pushing" true (feq !returned_at 1.0)

let test_huge_weight_write_pushes_eagerly () =
  let config =
    { Config.default with Config.conits = [ Conit.declare ~ne_bound:10.0 "c" ] }
  in
  let sys =
    System.create ~topology:(Topology.uniform ~n:3 ~latency:0.05 ~bandwidth:1e6)
      ~config ()
  in
  let engine = System.engine sys in
  let returned_at = ref nan in
  Engine.schedule engine ~delay:1.0 (fun () ->
      (* Weight 100 >> share 5: must push to everyone and await acks. *)
      Replica.submit_write (System.replica sys 0) ~deps:[]
        ~affects:[ { Write.conit = "c"; nweight = 100.0; oweight = 0.0 } ]
        ~op:(Op.Add ("x", 100.0))
        ~k:(fun _ -> returned_at := Engine.now engine));
  System.run ~until:30.0 sys;
  Alcotest.(check bool) "waited for acks (a round trip)" true (!returned_at > 1.05);
  Alcotest.(check bool) "eventually returned" true (not (Float.is_nan !returned_at))

let test_negative_weights_count_absolutely () =
  (* Decrements consume the budget like increments: |nweight|. *)
  let config =
    { Config.default with Config.conits = [ Conit.declare ~ne_bound:4.0 "c" ] }
  in
  let sys =
    System.create ~topology:(Topology.uniform ~n:2 ~latency:0.05 ~bandwidth:1e6)
      ~config ()
  in
  let engine = System.engine sys in
  for k = 1 to 10 do
    Engine.schedule engine
      ~delay:(float_of_int k)
      (fun () ->
        Replica.submit_write (System.replica sys 0) ~deps:[]
          ~affects:[ { Write.conit = "c"; nweight = -1.0; oweight = 0.0 } ]
          ~op:(Op.Add ("x", -1.0))
          ~k:ignore)
  done;
  System.run ~until:60.0 sys;
  Alcotest.(check bool) "pushes happened for decrements" true
    ((System.total_stats sys).Replica.pushes_budget > 0);
  (* Replica 1's view is never more than 4 decrements behind. *)
  Alcotest.(check bool) "bound held" true
    (Float.abs
       (Wlog.conit_value (Replica.log (System.replica sys 1)) "c"
       -. Wlog.conit_value (Replica.log (System.replica sys 0)) "c")
    <= 4.0 +. 1e-9)

(* --- Alternative topologies ------------------------------------------------ *)

let test_clustered_topology_end_to_end () =
  let topology =
    Topology.clustered ~clusters:2 ~per_cluster:2 ~local:0.002 ~wan:0.1
      ~bandwidth:1e6
  in
  let config = { Config.default with Config.antientropy_period = Some 0.5 } in
  let sys = System.create ~topology ~config () in
  let engine = System.engine sys in
  for i = 0 to 3 do
    Engine.schedule engine
      ~delay:(0.5 +. (0.25 *. float_of_int i))
      (fun () ->
        Replica.submit_write (System.replica sys i) ~deps:[] ~affects:[ unit_w "c" ]
          ~op:(Op.Add ("x", 1.0))
          ~k:ignore)
  done;
  System.run ~until:60.0 sys;
  Alcotest.(check bool) "clustered converges" true (System.converged sys);
  Alcotest.(check int) "all committed" 4
    (Wlog.committed_count (Replica.log (System.replica sys 0)))

let test_star_topology_end_to_end () =
  let topology = Topology.star ~n:4 ~spoke:0.05 ~bandwidth:1e6 in
  let config =
    {
      Config.default with
      Config.commit_scheme = Config.Primary 0;
      antientropy_period = Some 0.5;
    }
  in
  let sys = System.create ~topology ~config () in
  let engine = System.engine sys in
  for i = 0 to 3 do
    Engine.schedule engine
      ~delay:(0.5 +. (0.25 *. float_of_int i))
      (fun () ->
        Replica.submit_write (System.replica sys i) ~deps:[] ~affects:[ unit_w "c" ]
          ~op:(Op.Add ("x", 1.0))
          ~k:ignore)
  done;
  System.run ~until:60.0 sys;
  Alcotest.(check bool) "star converges" true (System.converged sys)

(* --- Policies under live systems ------------------------------------------- *)

let test_adaptive_policy_system () =
  let config =
    {
      Config.default with
      Config.conits = [ Conit.declare ~ne_bound:6.0 "c" ];
      budget_policy = Tact_protocols.Budget.Adaptive;
      antientropy_period = Some 1.0;
    }
  in
  let sys =
    System.create ~topology:(Topology.uniform ~n:3 ~latency:0.04 ~bandwidth:1e6)
      ~config ()
  in
  let engine = System.engine sys in
  for k = 1 to 20 do
    Engine.schedule engine
      ~delay:(0.4 *. float_of_int k)
      (fun () ->
        Replica.submit_write (System.replica sys (k mod 3)) ~deps:[]
          ~affects:[ unit_w "c" ]
          ~op:(Op.Add ("x", 1.0))
          ~k:ignore)
  done;
  System.run ~until:120.0 sys;
  Alcotest.(check bool) "adaptive system converges" true (System.converged sys);
  Alcotest.(check int) "all committed" 20
    (Wlog.committed_count (Replica.log (System.replica sys 0)))

(* --- Mixed conit interest --------------------------------------------------- *)

let test_per_conit_independence () =
  (* Two independent conits: a tight bound on one never blocks accesses that
     depend only on the other (self-determination across conits). *)
  let config =
    {
      Config.default with
      Config.conits = [ Conit.declare ~ne_bound:0.0 "hot"; Conit.unconstrained "cold" ];
    }
  in
  let sys =
    System.create ~topology:(Topology.uniform ~n:3 ~latency:0.05 ~bandwidth:1e6)
      ~config ()
  in
  let engine = System.engine sys in
  let cold_lat = ref nan in
  Engine.schedule engine ~delay:1.0 (fun () ->
      (* A cold write returns instantly even while hot writes synchronise. *)
      Replica.submit_write (System.replica sys 0) ~deps:[]
        ~affects:[ unit_w "hot" ] ~op:(Op.Add ("h", 1.0)) ~k:ignore;
      let t0 = Engine.now engine in
      Replica.submit_write (System.replica sys 0) ~deps:[]
        ~affects:[ unit_w "cold" ]
        ~op:(Op.Add ("co", 1.0))
        ~k:(fun _ -> cold_lat := Engine.now engine -. t0));
  System.run ~until:30.0 sys;
  Alcotest.(check bool)
    (Printf.sprintf "cold write local (%.4fs)" !cold_lat)
    true (!cold_lat < 1e-9)

(* --- Reads of missing data --------------------------------------------------- *)

let test_read_missing_key_is_nil () =
  let sys =
    System.create ~topology:(Topology.uniform ~n:1 ~latency:0.0 ~bandwidth:1e6)
      ~config:Config.default ()
  in
  let got = ref (Value.Int 99) in
  Replica.submit_read (System.replica sys 0) ~deps:[]
    ~f:(fun db -> Db.get db "never-written")
    ~k:(fun v -> got := v);
  System.run sys;
  Alcotest.(check bool) "nil" true (Value.equal !got Value.Nil)

let suite =
  [
    Alcotest.test_case "single replica strong is free" `Quick test_single_replica_strong_is_free;
    Alcotest.test_case "empty workload" `Quick test_empty_workload;
    Alcotest.test_case "zero latency network" `Quick test_zero_latency_network;
    Alcotest.test_case "simultaneous writes tiebreak" `Quick test_simultaneous_writes_tiebreak;
    Alcotest.test_case "zero-weight write free" `Quick test_zero_weight_write_ignores_budget;
    Alcotest.test_case "huge-weight write eager" `Quick test_huge_weight_write_pushes_eagerly;
    Alcotest.test_case "negative weights absolute" `Quick test_negative_weights_count_absolutely;
    Alcotest.test_case "clustered topology" `Quick test_clustered_topology_end_to_end;
    Alcotest.test_case "star topology" `Quick test_star_topology_end_to_end;
    Alcotest.test_case "adaptive policy live" `Quick test_adaptive_policy_system;
    Alcotest.test_case "per-conit independence" `Quick test_per_conit_independence;
    Alcotest.test_case "read missing key" `Quick test_read_missing_key_is_nil;
  ]
