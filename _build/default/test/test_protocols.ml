(* Budget allocation policies and CSN bookkeeping. *)

open Tact_protocols

let feq a b = Float.abs (a -. b) < 1e-9

let test_even_share () =
  let s =
    Budget.share Budget.Even ~bound:9.0 ~n:4 ~self:1 ~receiver:0
      ~rates:[| 0.0; 0.0; 0.0; 0.0 |]
  in
  Alcotest.(check bool) "bound/(n-1)" true (feq s 3.0)

let test_infinite_bound () =
  Alcotest.(check bool) "inf share" true
    (Budget.share Budget.Even ~bound:infinity ~n:3 ~self:1 ~receiver:0
       ~rates:[| 0.0; 0.0; 0.0 |]
    = infinity)

let test_proportional_share () =
  let rates = [| 8.0; 1.0; 1.0 |] in
  let hot =
    Budget.share (Budget.Proportional rates) ~bound:10.0 ~n:3 ~self:0 ~receiver:2
      ~rates:[| 0.0; 0.0; 0.0 |]
  in
  let cold =
    Budget.share (Budget.Proportional rates) ~bound:10.0 ~n:3 ~self:1 ~receiver:2
      ~rates:[| 0.0; 0.0; 0.0 |]
  in
  (* Shares toward receiver 2 are split over writers 0 and 1 (8:1). *)
  Alcotest.(check bool) "hot gets most" true (feq hot (10.0 *. 8.0 /. 9.0));
  Alcotest.(check bool) "cold gets little" true (feq cold (10.0 /. 9.0))

let test_adaptive_uses_live_rates () =
  let s =
    Budget.share Budget.Adaptive ~bound:10.0 ~n:3 ~self:0 ~receiver:2
      ~rates:[| 8.0; 2.0; 5.0 |]
  in
  Alcotest.(check bool) "live rates" true (feq s (10.0 *. 8.0 /. 10.0))

let test_zero_rates_fall_back_even () =
  let s =
    Budget.share Budget.Adaptive ~bound:10.0 ~n:3 ~self:0 ~receiver:2
      ~rates:[| 0.0; 0.0; 0.0 |]
  in
  Alcotest.(check bool) "even fallback" true (feq s 5.0)

(* Safety: for any policy and rate vector, the shares of all writers toward
   one receiver sum to at most the bound (within float noise). *)
let test_share_sum_bounded =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"sum of shares <= bound" ~count:300
       QCheck.(
         pair (float_range 0.1 100.0)
           (list_of_size (Gen.return 4) (float_range 0.0 10.0)))
       (fun (bound, rates_l) ->
         let rates = Array.of_list rates_l in
         let n = 4 in
         List.for_all
           (fun policy ->
             let receiver = 0 in
             let total = ref 0.0 in
             for self = 1 to n - 1 do
               total := !total +. Budget.share policy ~bound ~n ~self ~receiver ~rates
             done;
             !total <= bound +. 1e-6)
           [ Budget.Even; Budget.Adaptive; Budget.Proportional rates ]))

let test_policy_names () =
  Alcotest.(check string) "even" "even" (Budget.policy_name Budget.Even);
  Alcotest.(check string) "adaptive" "adaptive" (Budget.policy_name Budget.Adaptive);
  Alcotest.(check string) "proportional" "proportional"
    (Budget.policy_name (Budget.Proportional [||]))

(* --- Csn_buffer --------------------------------------------------------- *)

let id origin seq = { Tact_store.Write.origin; seq }

let test_csn_append_slice () =
  let b = Csn_buffer.create () in
  Csn_buffer.append b (id 0 1);
  Csn_buffer.append b (id 1 1);
  Alcotest.(check int) "known" 2 (Csn_buffer.known b);
  Alcotest.(check int) "get" 1 (Csn_buffer.get b 1).Tact_store.Write.origin;
  Alcotest.(check int) "full slice" 2 (List.length (Csn_buffer.slice_from b 0));
  Alcotest.(check int) "suffix slice" 1 (List.length (Csn_buffer.slice_from b 1));
  Alcotest.(check int) "empty slice" 0 (List.length (Csn_buffer.slice_from b 2))

let test_csn_offer_overlap () =
  let b = Csn_buffer.create () in
  Csn_buffer.offer b ~start:0 [ id 0 1; id 0 2 ];
  Csn_buffer.offer b ~start:1 [ id 0 2; id 0 3 ];
  Alcotest.(check int) "overlap merged" 3 (Csn_buffer.known b)

let test_csn_offer_gap_buffered () =
  let b = Csn_buffer.create () in
  Csn_buffer.offer b ~start:2 [ id 0 3; id 0 4 ];
  Alcotest.(check int) "gapped slice parked" 0 (Csn_buffer.known b);
  Csn_buffer.offer b ~start:0 [ id 0 1; id 0 2 ];
  Alcotest.(check int) "drained through" 4 (Csn_buffer.known b);
  Alcotest.(check int) "order correct" 4 (Csn_buffer.get b 3).Tact_store.Write.seq

let test_csn_gap_behind_growth () =
  let b = Csn_buffer.create () in
  Csn_buffer.offer b ~start:3 [ id 0 4 ];
  Csn_buffer.offer b ~start:1 [ id 0 2; id 0 3 ];
  Alcotest.(check int) "still waiting for prefix" 0 (Csn_buffer.known b);
  Csn_buffer.offer b ~start:0 [ id 0 1 ];
  Alcotest.(check int) "everything drains" 4 (Csn_buffer.known b)

let test_csn_out_of_order_replay =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"csn slices in any order reconstruct the sequence"
       ~count:200
       QCheck.(int_bound 1000)
       (fun seed ->
         let rng = Tact_util.Prng.create ~seed in
         let total = 1 + Tact_util.Prng.int rng 20 in
         let ids = List.init total (fun i -> id 0 (i + 1)) in
         (* Random overlapping slices covering [0,total). *)
         let slices = ref [] in
         let covered = ref 0 in
         while !covered < total do
           let start = max 0 (!covered - Tact_util.Prng.int rng 3) in
           let len = 1 + Tact_util.Prng.int rng 5 in
           let stop = min total (start + len) in
           slices := (start, List.filteri (fun i _ -> i >= start && i < stop) ids) :: !slices;
           if stop > !covered then covered := stop
         done;
         let arr = Array.of_list !slices in
         Tact_util.Prng.shuffle rng arr;
         let b = Csn_buffer.create () in
         Array.iter (fun (start, slice) -> Csn_buffer.offer b ~start slice) arr;
         Csn_buffer.known b = total
         && List.for_all2 ( = ) (Csn_buffer.slice_from b 0) ids))

let suite =
  [
    Alcotest.test_case "even share" `Quick test_even_share;
    Alcotest.test_case "infinite bound" `Quick test_infinite_bound;
    Alcotest.test_case "proportional share" `Quick test_proportional_share;
    Alcotest.test_case "adaptive live rates" `Quick test_adaptive_uses_live_rates;
    Alcotest.test_case "zero rates fallback" `Quick test_zero_rates_fall_back_even;
    test_share_sum_bounded;
    Alcotest.test_case "policy names" `Quick test_policy_names;
    Alcotest.test_case "csn append/slice" `Quick test_csn_append_slice;
    Alcotest.test_case "csn offer overlap" `Quick test_csn_offer_overlap;
    Alcotest.test_case "csn gap buffered" `Quick test_csn_offer_gap_buffered;
    Alcotest.test_case "csn gap behind growth" `Quick test_csn_gap_behind_growth;
    test_csn_out_of_order_replay;
  ]
