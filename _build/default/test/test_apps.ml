(* Sample applications: behavioural shape checks on short runs. *)

open Tact_sim
open Tact_store
open Tact_replica
open Tact_apps

let feq a b = Float.abs (a -. b) < 1e-9

(* --- Bulletin board ------------------------------------------------------ *)

let test_bboard_bound_caps_error () =
  let r =
    Bboard.run ~seed:3 ~n:4 ~post_rate:2.0 ~read_rate:1.0 ~duration:20.0
      ~ne_bound:4.0 ~antientropy:None ()
  in
  Alcotest.(check bool) "observed NE never above bound" true (r.max_observed_ne <= 4.0);
  Alcotest.(check int) "no violations" 0 r.violations;
  Alcotest.(check bool) "posts happened" true (r.posts > 10)

let test_bboard_tighter_is_costlier () =
  let loose =
    Bboard.run ~seed:3 ~n:4 ~post_rate:2.0 ~read_rate:0.5 ~duration:20.0
      ~ne_bound:16.0 ~antientropy:None ()
  in
  let tight =
    Bboard.run ~seed:3 ~n:4 ~post_rate:2.0 ~read_rate:0.5 ~duration:20.0
      ~ne_bound:1.0 ~antientropy:None ()
  in
  Alcotest.(check bool) "tight sends more messages" true (tight.messages > loose.messages);
  Alcotest.(check bool) "tight sees less error" true
    (tight.mean_observed_ne <= loose.mean_observed_ne)

let test_bboard_friends_conit () =
  let sys = System.create ~topology:(Topology.uniform ~n:2 ~latency:0.02 ~bandwidth:1e6) ~config:Config.default () in
  let s = Session.create (System.replica sys 0) in
  Bboard.post s ~author:0 ~friends:[ 0 ] ~text:"hi" ~k:ignore;
  Bboard.post s ~author:0 ~friends:[ 9 ] ~text:"yo" ~k:ignore;
  System.run sys;
  let log = Replica.log (System.replica sys 0) in
  Alcotest.(check bool) "all msgs counted" true (feq (Wlog.conit_value log Bboard.conit_all) 2.0);
  Alcotest.(check bool) "friends counted once" true
    (feq (Wlog.conit_value log Bboard.conit_friends) 1.0)

(* --- Airline --------------------------------------------------------------- *)

let test_airline_bound_lowers_conflicts () =
  let loose =
    Airline.run ~seed:5 ~n:4 ~flights:1 ~seats:100 ~rate:2.0 ~duration:30.0
      ~ne_rel:infinity ()
  in
  let tight =
    Airline.run ~seed:5 ~n:4 ~flights:1 ~seats:100 ~rate:2.0 ~duration:30.0
      ~ne_rel:0.05 ()
  in
  Alcotest.(check bool) "bounded run conflicts less" true
    (tight.conflict_rate < loose.conflict_rate);
  Alcotest.(check bool) "bounded run has lower measured NE" true
    (tight.mean_rel_ne < loose.mean_rel_ne);
  Alcotest.(check bool) "loose run shows real conflicts" true (loose.final_conflicts > 0)

let test_airline_conflict_rate_tracks_ne () =
  let r =
    Airline.run ~seed:9 ~n:4 ~flights:1 ~seats:100 ~rate:2.0 ~duration:40.0
      ~ne_rel:infinity ()
  in
  (* The Section 4.1 claim, loosely: conflict rate within a small factor of
     the measured mean relative NE (only same-seat races materialise). *)
  Alcotest.(check bool)
    (Printf.sprintf "rate %.3f vs relNE %.3f" r.conflict_rate r.mean_rel_ne)
    true
    (r.conflict_rate <= r.mean_rel_ne *. 1.5 && r.conflict_rate >= r.mean_rel_ne /. 10.0)

let test_airline_no_double_booking () =
  let r =
    Airline.run ~seed:11 ~n:3 ~flights:1 ~seats:10 ~rate:2.0 ~duration:30.0
      ~ne_rel:infinity ()
  in
  (* With only 10 seats and ~180 attempts, the committed state must never
     oversell: successful final outcomes <= seats. *)
  Alcotest.(check bool) "attempts exceeded capacity" true (r.attempts > 10);
  Alcotest.(check bool) "successes bounded by seats" true
    (r.attempts - r.final_conflicts - r.tentative_conflicts <= 10 + r.tentative_conflicts)

let test_airline_committed_state_consistent () =
  (* Directly inspect the committed image: the taken-seat list per flight has
     no duplicates. *)
  let sys =
    System.create
      ~topology:(Topology.uniform ~n:2 ~latency:0.02 ~bandwidth:1e6)
      ~config:{ Config.default with Config.antientropy_period = Some 0.2 }
      ()
  in
  let engine = System.engine sys in
  let rng = Tact_util.Prng.create ~seed:17 in
  for i = 0 to 1 do
    let s = Session.create (System.replica sys i) in
    let prng = Tact_util.Prng.split rng in
    Tact_workload.Workload.staggered engine ~start:0.1 ~gap:0.3 ~count:20 (fun _ ->
        Airline.reserve s ~rng:prng ~flight:0 ~seats:12 ~k:ignore)
  done;
  System.run ~until:60.0 sys;
  let db = Wlog.committed_db (Replica.log (System.replica sys 0)) in
  let taken = List.map Value.to_int (Value.to_list (Db.get db (Airline.flight_key 0))) in
  let dedup = List.sort_uniq compare taken in
  Alcotest.(check int) "no duplicate seats" (List.length dedup) (List.length taken);
  Alcotest.(check bool) "plane full or close" true (List.length taken <= 12)

(* --- QoS --------------------------------------------------------------- *)

let test_qos_bound_improves_routing () =
  let tight = Qos.run ~seed:7 ~n:4 ~rate:4.0 ~duration:20.0 ~ne_bound:1.0 () in
  let loose = Qos.run ~seed:7 ~n:4 ~rate:4.0 ~duration:20.0 ~ne_bound:infinity () in
  Alcotest.(check bool) "fewer misroutes when bounded" true
    (tight.misroute_rate < loose.misroute_rate);
  Alcotest.(check bool) "less imbalance when bounded" true
    (tight.mean_imbalance < loose.mean_imbalance);
  Alcotest.(check bool) "more traffic when bounded" true (tight.messages > loose.messages)

(* --- Editor --------------------------------------------------------------- *)

let test_editor_insert_delete () =
  let sys =
    System.create
      ~topology:(Topology.uniform ~n:2 ~latency:0.02 ~bandwidth:1e6)
      ~config:{ Config.default with Config.antientropy_period = Some 0.2 }
      ()
  in
  let engine = System.engine sys in
  let s0 = Session.create (System.replica sys 0) in
  Engine.schedule engine ~delay:0.1 (fun () ->
      Editor.insert_text s0 ~para:0 ~author:0 ~text:"hello " ~k:ignore);
  Engine.schedule engine ~delay:0.2 (fun () ->
      Editor.insert_text s0 ~para:0 ~author:0 ~text:"world" ~k:ignore);
  Engine.schedule engine ~delay:0.3 (fun () ->
      Editor.delete_chars s0 ~para:0 ~author:0 ~count:5 ~k:ignore);
  System.run ~until:30.0 sys;
  let text r =
    List.hd (Editor.document (Replica.db (System.replica sys r)) ~paras:1)
  in
  Alcotest.(check string) "edited text" "hello " (text 0);
  Alcotest.(check string) "replicated text" "hello " (text 1);
  (* Conit values reflect character weights. *)
  let log = Replica.log (System.replica sys 1) in
  Alcotest.(check bool) "add conit = 11 chars" true
    (feq (Wlog.conit_value log (Editor.add_conit ~para:0)) 11.0);
  Alcotest.(check bool) "del conit = 5 chars" true
    (feq (Wlog.conit_value log (Editor.del_conit ~para:0)) 5.0);
  Alcotest.(check bool) "author conit = 16" true
    (feq (Wlog.conit_value log (Editor.author_conit ~para:0 ~author:0)) 16.0)

let test_editor_delete_clamps () =
  let sys =
    System.create
      ~topology:(Topology.uniform ~n:1 ~latency:0.0 ~bandwidth:1e6)
      ~config:Config.default ()
  in
  let s = Session.create (System.replica sys 0) in
  Editor.insert_text s ~para:0 ~author:0 ~text:"ab" ~k:ignore;
  Editor.delete_chars s ~para:0 ~author:0 ~count:10 ~k:ignore;
  System.run sys;
  Alcotest.(check string) "clamped to empty" ""
    (List.hd (Editor.document (Replica.db (System.replica sys 0)) ~paras:1))

(* --- Sensor --------------------------------------------------------------- *)

let test_sensor_bounded_query () =
  let sys =
    System.create
      ~topology:(Topology.uniform ~n:2 ~latency:0.02 ~bandwidth:1e6)
      ~config:
        {
          Config.default with
          Config.conits =
            [ Tact_core.Conit.declare ~ne_bound:2.0 (Sensor.record_conit "r") ];
        }
      ()
  in
  let engine = System.engine sys in
  let s0 = Session.create (System.replica sys 0) in
  let s1 = Session.create (System.replica sys 1) in
  Tact_workload.Workload.staggered engine ~start:0.1 ~gap:0.2 ~count:10 (fun _ ->
      Sensor.report s0 ~record:"r" ~delta:1.0 ~k:ignore);
  let result = ref nan in
  Engine.schedule engine ~delay:2.05 (fun () ->
      Sensor.query s1 ~record:"r" ~max_error:2.0 ~k:(fun v -> result := v));
  System.run ~until:30.0 sys;
  (* At query time 10 reports happened globally; the bound guarantees the
     queried view is within 2. *)
  Alcotest.(check bool)
    (Printf.sprintf "bounded view (got %.1f)" !result)
    true
    (!result >= 8.0 && !result <= 10.0);
  Alcotest.(check bool) "no violations" true (Verify.check sys = [])

let base_suite =
  [
    Alcotest.test_case "bboard bound caps error" `Quick test_bboard_bound_caps_error;
    Alcotest.test_case "bboard tighter costlier" `Quick test_bboard_tighter_is_costlier;
    Alcotest.test_case "bboard friends conit" `Quick test_bboard_friends_conit;
    Alcotest.test_case "airline bound lowers conflicts" `Quick test_airline_bound_lowers_conflicts;
    Alcotest.test_case "airline rate tracks NE" `Quick test_airline_conflict_rate_tracks_ne;
    Alcotest.test_case "airline no overselling" `Quick test_airline_no_double_booking;
    Alcotest.test_case "airline committed seats unique" `Quick test_airline_committed_state_consistent;
    Alcotest.test_case "qos bound improves routing" `Quick test_qos_bound_improves_routing;
    Alcotest.test_case "editor insert/delete" `Quick test_editor_insert_delete;
    Alcotest.test_case "editor delete clamps" `Quick test_editor_delete_clamps;
    Alcotest.test_case "sensor bounded query" `Quick test_sensor_bounded_query;
  ]

(* --- Virtual world ------------------------------------------------------- *)

let test_vworld_focus_nimbus () =
  let r =
    Vworld.run ~seed:151 ~n:4 ~move_rate:4.0 ~observe_rate:2.0 ~duration:15.0
      ~near_bound:1.0 ~far_bound:20.0 ()
  in
  Alcotest.(check bool) "focus more accurate" true (r.near_err < r.far_err);
  Alcotest.(check bool) "focus error within bound (+move slack)" true
    (r.near_err <= r.near_bound +. 1.0);
  Alcotest.(check bool) "focus pays latency" true (r.near_lat > r.far_lat);
  Alcotest.(check bool) "peripheral reads are local" true (r.far_lat < 1e-9);
  Alcotest.(check int) "no violations" 0 r.violations

let test_vworld_move_geometry () =
  let sys =
    System.create
      ~topology:(Topology.uniform ~n:1 ~latency:0.0 ~bandwidth:1e6)
      ~config:Config.default ()
  in
  let s = Session.create (System.replica sys 0) in
  Vworld.move s ~entity:0 ~dx:3.0 ~dy:4.0 ~k:ignore;
  System.run sys;
  let x, y = Vworld.position (Replica.db (System.replica sys 0)) ~entity:0 in
  Alcotest.(check bool) "position applied" true (feq x 3.0 && feq y 4.0);
  (* nweight of the move is its Euclidean length. *)
  let w = List.hd (System.all_writes sys) in
  Alcotest.(check bool) "weight = distance" true
    (feq (Write.nweight w (Vworld.pos_conit 0)) 5.0)

let vworld_suite =
  [
    Alcotest.test_case "vworld focus/nimbus" `Quick test_vworld_focus_nimbus;
    Alcotest.test_case "vworld move geometry" `Quick test_vworld_move_geometry;
  ]


(* --- Roads ----------------------------------------------------------------- *)

let test_roads_accuracy_spreads_traffic () =
  let tight = Roads.run ~seed:31 ~n:4 ~sections:4 ~rate:3.0 ~duration:25.0 ~ne_bound:2.0 () in
  let loose = Roads.run ~seed:31 ~n:4 ~sections:4 ~rate:3.0 ~duration:25.0 ~ne_bound:infinity () in
  Alcotest.(check bool)
    (Printf.sprintf "accurate views spread traffic (%.2f < %.2f)" tight.mean_spread
       loose.mean_spread)
    true
    (tight.mean_spread < loose.mean_spread);
  Alcotest.(check bool) "accuracy costs traffic" true (tight.messages > loose.messages);
  Alcotest.(check int) "tight run clean" 0 tight.violations

let test_roads_capacity_enforced () =
  (* A tiny section capacity under heavy load: the committed state never
     exceeds capacity. *)
  let sys =
    System.create
      ~topology:(Topology.uniform ~n:2 ~latency:0.02 ~bandwidth:1e6)
      ~config:{ Config.default with Config.antientropy_period = Some 0.2 }
      ()
  in
  let engine = System.engine sys in
  for i = 0 to 1 do
    let s = Session.create (System.replica sys i) in
    Tact_workload.Workload.staggered engine ~start:0.1 ~gap:0.2 ~count:15 (fun _ ->
        Roads.reserve_section s ~section:0 ~capacity:5 ~k:ignore)
  done;
  System.run ~until:60.0 sys;
  let committed = Wlog.committed_db (Replica.log (System.replica sys 0)) in
  Alcotest.(check bool) "capacity respected in committed state" true
    (Db.get_float committed (Roads.section_key 0) <= 5.0)

let roads_suite =
  [
    Alcotest.test_case "roads accuracy spreads traffic" `Quick test_roads_accuracy_spreads_traffic;
    Alcotest.test_case "roads capacity enforced" `Quick test_roads_capacity_enforced;
  ]

let suite = base_suite @ vworld_suite @ roads_suite
