(* The declarative spec layer (Section 3.4's five steps as values). *)

open Tact_sim
open Tact_store
open Tact_core
open Tact_replica

let feq a b = Float.abs (a -. b) < 1e-9

type post = { author : int; text : string; friends : int list }

let post_class : post Spec.op_class =
  Spec.op_class ~name:"post"
    ~affects:(fun p ->
      ("AllMsg", 1.0, 1.0)
      :: (if List.mem p.author p.friends then [ ("MsgFromFriends", 1.0, 1.0) ] else []))
    ~op:(fun p -> Op.Append ("board", Value.Str p.text))
    ()

let read_board : unit Spec.query =
  Spec.query ~name:"read board"
    ~depends:(fun () -> [ ("AllMsg", Bounds.make ~ne:10.0 ~oe:5.0 ()) ])
    ~read:(fun () db -> Db.get db "board")
    ()

let test_spec_annotates_writes () =
  let sys =
    System.create ~topology:(Topology.uniform ~n:2 ~latency:0.02 ~bandwidth:1e6)
      ~config:Config.default ()
  in
  let s = Session.create (System.replica sys 0) in
  Spec.submit post_class s { author = 1; text = "hi"; friends = [ 1 ] } ~k:ignore;
  Spec.submit post_class s { author = 9; text = "yo"; friends = [ 1 ] } ~k:ignore;
  System.run sys;
  (match System.all_writes sys with
  | [ w1; w2 ] ->
    Alcotest.(check bool) "friend post hits both conits" true
      (feq (Write.nweight w1 "AllMsg") 1.0 && feq (Write.nweight w1 "MsgFromFriends") 1.0);
    Alcotest.(check bool) "stranger post hits one" true
      (feq (Write.nweight w2 "AllMsg") 1.0
      && not (Write.affects_conit w2 "MsgFromFriends"))
  | _ -> Alcotest.fail "two writes expected");
  Alcotest.(check string) "name" "post" (Spec.class_name post_class)

let test_spec_query_deps () =
  let sys =
    System.create ~topology:(Topology.uniform ~n:2 ~latency:0.02 ~bandwidth:1e6)
      ~config:Config.default ()
  in
  let s = Session.create (System.replica sys 0) in
  Spec.ask read_board s () ~k:ignore;
  System.run sys;
  match System.records sys with
  | [ a ] ->
    Alcotest.(check bool) "dep recorded" true (Access.depends_on a "AllMsg");
    (match Access.bound_for a "AllMsg" with
    | Some b -> Alcotest.(check bool) "bound carried" true (feq b.Bounds.ne 10.0)
    | None -> Alcotest.fail "bound missing")
  | _ -> Alcotest.fail "one access expected"

let suite =
  [
    Alcotest.test_case "spec annotates writes" `Quick test_spec_annotates_writes;
    Alcotest.test_case "spec query deps" `Quick test_spec_query_deps;
  ]
