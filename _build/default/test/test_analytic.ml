(* Closed-form cost models vs simulation. *)

open Tact_experiments

let feq ?(eps = 1e-9) a b = Float.abs (a -. b) < eps

let test_formulas () =
  Alcotest.(check bool) "even share" true (feq (Analytic.even_share ~bound:9.0 ~n:4) 3.0);
  Alcotest.(check bool) "pushes per write" true
    (feq (Analytic.pushes_per_write ~bound:9.0 ~n:4 ~weight:1.0) 1.0);
  Alcotest.(check bool) "eager ceiling" true
    (feq (Analytic.pushes_per_write ~bound:1.0 ~n:4 ~weight:1.0) 3.0);
  Alcotest.(check bool) "infinite bound free" true
    (feq (Analytic.pushes_per_write ~bound:infinity ~n:4 ~weight:1.0) 0.0);
  Alcotest.(check int) "pull round msgs" 6 (Analytic.pull_round_msgs ~n:4);
  Alcotest.(check bool) "pull latency = RTT" true
    (feq (Analytic.pull_read_latency ~n:4 ~one_way:0.04) 0.08);
  Alcotest.(check bool) "conflict prob clamps" true
    (feq (Analytic.conflict_probability ~rel_ne:3.0) 1.0)

(* The simulated budget-push count should match the first-order model within
   a factor of ~2 (batching makes the sim cheaper, retries costlier). *)
let test_push_model_vs_sim () =
  let open Tact_sim in
  let open Tact_store in
  let open Tact_replica in
  let n = 4 and bound = 6.0 and writes = 60 in
  let config =
    {
      Config.default with
      Config.conits = [ Tact_core.Conit.declare ~ne_bound:bound "c" ];
      antientropy_period = None;
    }
  in
  let sys =
    System.create ~topology:(Topology.uniform ~n ~latency:0.03 ~bandwidth:1e6)
      ~config ()
  in
  let engine = System.engine sys in
  (* A single writer, spaced writes (no batching interference). *)
  Tact_workload.Workload.staggered engine ~start:0.5 ~gap:0.5 ~count:writes
    (fun _ ->
      Replica.submit_write (System.replica sys 0) ~deps:[]
        ~affects:[ { Write.conit = "c"; nweight = 1.0; oweight = 0.0 } ]
        ~op:(Op.Add ("x", 1.0)) ~k:ignore);
  System.run ~until:120.0 sys;
  let predicted =
    Analytic.pushes_per_write ~bound ~n ~weight:1.0 *. float_of_int writes
  in
  let measured = float_of_int (System.total_stats sys).Replica.pushes_budget in
  Alcotest.(check bool)
    (Printf.sprintf "measured %.0f vs predicted %.0f" measured predicted)
    true
    (measured >= predicted /. 2.0 && measured <= predicted *. 2.0)

let test_pull_latency_model_vs_sim () =
  let open Tact_sim in
  let open Tact_store in
  let open Tact_replica in
  let one_way = 0.05 in
  let config = { Config.default with Config.conits = [ Tact_core.Conit.declare "c" ] } in
  let sys =
    System.create ~jitter:0.0
      ~topology:(Topology.uniform ~n:4 ~latency:one_way ~bandwidth:1e9)
      ~config ()
  in
  let engine = System.engine sys in
  let lat = ref nan in
  Engine.schedule engine ~delay:1.0 (fun () ->
      let t0 = Engine.now engine in
      Replica.submit_read (System.replica sys 0)
        ~deps:[ ("c", Tact_core.Bounds.make ~ne:0.0 ()) ]
        ~f:(fun _ -> Value.Nil)
        ~k:(fun _ -> lat := Engine.now engine -. t0));
  System.run ~until:30.0 sys;
  let predicted = Analytic.pull_read_latency ~n:4 ~one_way in
  Alcotest.(check bool)
    (Printf.sprintf "measured %.4f ~ predicted %.4f" !lat predicted)
    true
    (Float.abs (!lat -. predicted) < 0.01)

let suite =
  [
    Alcotest.test_case "formulas" `Quick test_formulas;
    Alcotest.test_case "push model vs sim" `Quick test_push_model_vs_sim;
    Alcotest.test_case "pull latency model vs sim" `Quick test_pull_latency_model_vs_sim;
  ]
