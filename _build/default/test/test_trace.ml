(* The trace ring buffer and its replica integration. *)

open Tact_util

let test_ring_buffer () =
  let tr = Trace.create ~capacity:3 () in
  for i = 1 to 5 do
    Trace.record tr ~time:(float_of_int i) ~source:"s" ~kind:"k" (string_of_int i)
  done;
  Alcotest.(check int) "total count" 5 (Trace.count tr);
  let evs = Trace.events tr in
  Alcotest.(check int) "retained = capacity" 3 (List.length evs);
  Alcotest.(check (list string)) "oldest evicted" [ "3"; "4"; "5" ]
    (List.map (fun (e : Trace.event) -> e.detail) evs)

let test_render_and_find () =
  let tr = Trace.create () in
  Trace.record tr ~time:1.0 ~source:"a" ~kind:"x" "one";
  Trace.record tr ~time:2.0 ~source:"b" ~kind:"y" "two";
  Trace.record tr ~time:3.0 ~source:"a" ~kind:"x" "three";
  Alcotest.(check int) "find by kind" 2 (List.length (Trace.find tr ~kind:"x"));
  let r = Trace.render ~last:1 tr in
  Alcotest.(check bool) "render tail" true
    (String.length r > 0
    && List.length (String.split_on_char '\n' (String.trim r)) = 1)

let test_replica_integration () =
  let open Tact_sim in
  let open Tact_store in
  let open Tact_replica in
  let tr = Trace.create () in
  let config =
    { Config.default with Config.antientropy_period = Some 0.5; trace = Some tr }
  in
  let sys =
    System.create ~topology:(Topology.uniform ~n:2 ~latency:0.03 ~bandwidth:1e6)
      ~config ()
  in
  let engine = System.engine sys in
  Engine.schedule engine ~delay:0.1 (fun () ->
      Replica.submit_write (System.replica sys 0) ~deps:[]
        ~affects:[ { Write.conit = "c"; nweight = 1.0; oweight = 1.0 } ]
        ~op:(Op.Add ("x", 1.0)) ~k:ignore);
  System.run ~until:30.0 sys;
  Alcotest.(check bool) "accept traced" true (Trace.find tr ~kind:"accept" <> []);
  Alcotest.(check bool) "transfer traced" true (Trace.find tr ~kind:"transfer" <> []);
  Alcotest.(check bool) "commit traced" true (Trace.find tr ~kind:"commit" <> [])

let suite =
  [
    Alcotest.test_case "ring buffer" `Quick test_ring_buffer;
    Alcotest.test_case "render and find" `Quick test_render_and_find;
    Alcotest.test_case "replica integration" `Quick test_replica_integration;
  ]
