(* The scenario DSL and the system monitor. *)

open Tact_sim
open Tact_store
open Tact_replica
open Tact_workload

let feq a b = Float.abs (a -. b) < 1e-9

let system () =
  System.create
    ~topology:(Topology.uniform ~n:3 ~latency:0.03 ~bandwidth:1e6)
    ~config:
      {
        Config.default with
        Config.conits = [ Tact_core.Conit.declare "c" ];
        antientropy_period = Some 0.5;
      }
    ()

let test_scenario_happy_path () =
  let sys = system () in
  let results = ref [] in
  Scenario.run sys ~until:60.0
    [
      Scenario.at 1.0 (Scenario.write ~replica:0 ~conit:"c" (Op.Add ("x", 1.0)));
      Scenario.at 2.0 (Scenario.write ~replica:1 ~conit:"c" (Op.Add ("x", 1.0)));
      Scenario.at 5.0 (Scenario.strong_read ~replica:2 ~conit:"c" ~key:"x" results);
    ];
  (match !results with
  | [ (t, v) ] ->
    Alcotest.(check bool) "both writes seen" true (feq (Value.to_float v) 2.0);
    Alcotest.(check bool) "served promptly" true (t < 7.0)
  | _ -> Alcotest.fail "one read expected");
  Alcotest.(check bool) "no violations" true (Verify.check sys = [])

let test_scenario_fault_timeline () =
  let sys = system () in
  let results = ref [] in
  Scenario.run sys ~until:120.0
    [
      Scenario.at 1.0 (Scenario.write ~replica:0 ~conit:"c" (Op.Add ("x", 1.0)));
      Scenario.at 2.0 (Scenario.partition [ 2 ] [ 0; 1 ]);
      Scenario.at 3.0 (Scenario.strong_read ~replica:2 ~conit:"c" ~key:"x" results);
      Scenario.at 10.0 Scenario.heal;
      Scenario.at 12.0 (Scenario.crash 1);
      Scenario.at 15.0 (Scenario.recover 1);
    ];
  (match !results with
  | [ (t, v) ] ->
    Alcotest.(check bool) "read blocked across the partition" true (t > 10.0);
    Alcotest.(check bool) "read correct" true (feq (Value.to_float v) 1.0)
  | _ -> Alcotest.fail "one read expected");
  Alcotest.(check bool) "converged after faults" true (System.converged sys)

let test_monitor_series () =
  let sys = system () in
  let monitor = Monitor.start sys ~period:1.0 ~until:20.0 in
  Scenario.run sys ~until:40.0
    [
      Scenario.at 2.0 (Scenario.write ~replica:0 ~conit:"c" (Op.Add ("x", 1.0)));
      Scenario.at 8.0 (Scenario.write ~replica:1 ~conit:"c" (Op.Add ("x", 1.0)));
    ];
  let samples = Monitor.samples monitor in
  Alcotest.(check bool) "sampled about 20 times" true (List.length samples >= 18);
  (* Chronological and monotone in committed count. *)
  let committed0 = Monitor.series monitor ~f:(fun s -> float_of_int s.Monitor.committed.(0)) in
  let rec monotone = function
    | (t1, v1) :: ((t2, v2) :: _ as tl) -> t1 < t2 && v1 <= v2 && monotone tl
    | _ -> true
  in
  Alcotest.(check bool) "monotone commit series" true (monotone committed0);
  Alcotest.(check bool) "ends fully committed" true
    (match List.rev committed0 with (_, v) :: _ -> feq v 2.0 | [] -> false)

let suite =
  [
    Alcotest.test_case "scenario happy path" `Quick test_scenario_happy_path;
    Alcotest.test_case "scenario fault timeline" `Quick test_scenario_fault_timeline;
    Alcotest.test_case "monitor series" `Quick test_monitor_series;
  ]
