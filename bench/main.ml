(* The benchmark harness.

   Part 1 regenerates every table and figure indexed in DESIGN.md §5 /
   EXPERIMENTS.md (one experiment per paper artifact, printed as tables and
   ASCII plots).  Part 2 runs Bechamel micro-benchmarks of the protocol
   kernels the experiments exercise.

   Part 3 runs the scaling kernels: wall-clock measurements of the hot paths
   (write-log accept/commit, out-of-order insert storms, end-to-end served
   accesses, anti-entropy delta extraction, parallel schedule exploration)
   at sizes where asymptotic costs dominate.  [--json] runs only those and
   writes a machine-readable trajectory file (BENCH_PR4.json) used to track
   the perf of these paths across PRs.

   Usage:
     dune exec bench/main.exe                 # quick experiments + micro
     dune exec bench/main.exe -- --full       # full-length experiments
     dune exec bench/main.exe -- --no-micro   # skip Bechamel
     dune exec bench/main.exe -- E3 E12       # a subset, by id or name
     dune exec bench/main.exe -- --json       # scaling kernels -> BENCH_PR4.json
     dune exec bench/main.exe -- --pr6        # batched-sync kernels -> BENCH_PR6.json
     dune exec bench/main.exe -- --pr9        # sharding kernels -> BENCH_PR9.json
     dune exec bench/main.exe -- --pr10       # loopback transport -> BENCH_PR10.json
     dune exec bench/main.exe -- --compare A.json B.json  # per-kernel speedups
     dune exec bench/main.exe -- --smoke      # tiny kernel instances (CI guard)
     dune exec bench/main.exe -- -j 4         # run experiments/kernels on a
                                              # 4-domain pool *)

open Tact_experiments

let run_experiments ~quick ~jobs ~only =
  let selected =
    match only with
    | [] -> Registry.all
    | keys ->
      List.filter_map
        (fun k ->
          match Registry.find k with
          | Some e -> Some e
          | None ->
            Printf.printf
              "unknown experiment %S (use an id like E3 or a name like airline)\n" k;
            None)
        keys
  in
  let reports =
    if jobs <= 1 then
      List.map
        (fun (e : Registry.entry) ->
          let t0 = Unix.gettimeofday () in
          let report = e.run ~quick () in
          (e, report, Unix.gettimeofday () -. t0))
        selected
    else
      (* Experiments are independent simulations; their reports are the same
         at any job count, so run them on a pool and print in order after. *)
      Tact_util.Pool.with_pool ~jobs (fun pool ->
          Tact_util.Pool.map_list pool
            (fun (e : Registry.entry) ->
              let t0 = Unix.gettimeofday () in
              let report = e.run ~quick () in
              (e, report, Unix.gettimeofday () -. t0))
            selected)
  in
  List.iter
    (fun ((e : Registry.entry), report, dt) ->
      Printf.printf "\n%s\n" (String.make 78 '=');
      Printf.printf "%s [%s] — %s\n" e.id e.name e.paper_artifact;
      Printf.printf "%s\n" (String.make 78 '=');
      print_string report;
      Printf.printf "(%s ran in %.1fs)\n" e.id dt;
      flush stdout)
    reports

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks of the kernels underneath the experiments *)

open Bechamel
open Toolkit

let wlog_kernel ~writes () =
  let open Tact_store in
  let log = Wlog.create ~replicas:2 ~initial:[] in
  for seq = 1 to writes do
    ignore
      (Wlog.accept log
         (Write.make
            ~id:{ origin = 0; seq }
            ~accept_time:(float_of_int seq)
            ~op:(Op.Add ("x", 1.0))
            ~affects:[ { Write.conit = "c"; nweight = 1.0; oweight = 1.0 } ]))
  done;
  ignore (Wlog.commit_stable log ~cover:[| infinity; infinity |])

let metrics_kernel ~writes () =
  let open Tact_store in
  let ws =
    List.init writes (fun i ->
        Write.make
          ~id:{ origin = i mod 3; seq = (i / 3) + 1 }
          ~accept_time:(float_of_int i)
          ~op:Op.Noop
          ~affects:[ { Write.conit = "c"; nweight = 1.0; oweight = 1.0 } ])
  in
  ignore (Tact_core.Metrics.order_error_lcp ~ecg:ws ~local:ws "c");
  ignore (Tact_core.Metrics.value ws "c")

let sim_kernel ~events () =
  let open Tact_sim in
  let e = Engine.create () in
  for i = 1 to events do
    Engine.schedule e ~delay:(float_of_int (i mod 97)) ignore
  done;
  Engine.run e

let bboard_kernel () =
  ignore
    (Tact_apps.Bboard.run ~seed:3 ~n:3 ~post_rate:2.0 ~read_rate:1.0
       ~duration:5.0 ~ne_bound:4.0 ~antientropy:None ())

let vv_kernel () =
  let open Tact_store in
  let a = Version_vector.create 16 and b = Version_vector.create 16 in
  for i = 0 to 15 do
    Version_vector.set a i (i * 3);
    Version_vector.set b i (48 - (i * 3))
  done;
  for _ = 1 to 1000 do
    let c = Version_vector.copy a in
    Version_vector.merge_into c b;
    ignore (Version_vector.dominates c a)
  done

let budget_kernel () =
  let rates = [| 5.0; 1.0; 0.5; 2.0 |] in
  for self = 1 to 3 do
    for _ = 1 to 1000 do
      ignore
        (Tact_protocols.Budget.share Tact_protocols.Budget.Adaptive ~bound:10.0
           ~n:4 ~self ~receiver:0 ~rates)
    done
  done

let csn_kernel () =
  let open Tact_store in
  let b = Tact_protocols.Csn_buffer.create () in
  for i = 0 to 999 do
    Tact_protocols.Csn_buffer.offer b ~start:i [ { Write.origin = 0; seq = i + 1 } ]
  done;
  ignore (Tact_protocols.Csn_buffer.slice_from b 900)

let micro_tests =
  [
    Test.make ~name:"wlog: 500 accepts + stability commit"
      (Staged.stage (wlog_kernel ~writes:500));
    Test.make ~name:"metrics: LCP order error over 300 writes"
      (Staged.stage (metrics_kernel ~writes:300));
    Test.make ~name:"sim: 10k events through the engine"
      (Staged.stage (sim_kernel ~events:10_000));
    Test.make ~name:"version vectors: 1k merge/dominate (n=16)"
      (Staged.stage vv_kernel);
    Test.make ~name:"budget: 3k adaptive share computations"
      (Staged.stage budget_kernel);
    Test.make ~name:"csn buffer: 1k slice offers"
      (Staged.stage csn_kernel);
    Test.make ~name:"end-to-end: 5s bulletin-board simulation"
      (Staged.stage bboard_kernel);
  ]

let run_micro () =
  Printf.printf "\n%s\nBechamel micro-benchmarks (protocol kernels)\n%s\n"
    (String.make 78 '=') (String.make 78 '=');
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) ~kde:(Some 100) () in
  let test = Test.make_grouped ~name:"tact" ~fmt:"%s %s" micro_tests in
  let raw = Benchmark.all cfg instances test in
  let ols =
    Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let results = List.map (fun instance -> Analyze.all ols instance raw) instances in
  let results = Analyze.merge ols instances results in
  Hashtbl.iter
    (fun measure tbl ->
      Hashtbl.iter
        (fun name result ->
          match Analyze.OLS.estimates result with
          | Some [ est ] ->
            Printf.printf "%-55s %14.1f ns/run (%s)\n" name est measure
          | Some _ | None -> ())
        tbl)
    results

(* ------------------------------------------------------------------ *)
(* Scaling kernels: wall-clock measurements of the hot paths at sizes
   where asymptotic behaviour dominates.  Each kernel asserts its own
   postconditions so that [--smoke] doubles as a correctness guard. *)

open Tact_store

let bench_write ~origin ~seq ~t =
  Write.make ~id:{ origin; seq } ~accept_time:t
    ~op:(Op.Add ("x", 1.0))
    ~affects:[ { Write.conit = "c"; nweight = 1.0; oweight = 1.0 } ]

(* Accept [writes] local writes, then commit them through the primary-CSN
   path in timestamp order, [batch] ids at a time — the shape of a replica
   catching up on a CSN backlog accumulated while commitment lagged. *)
let kernel_accept_commit ~writes ?(batch = 64) () =
  let log = Wlog.create ~replicas:2 ~initial:[] in
  for seq = 1 to writes do
    ignore (Wlog.accept log (bench_write ~origin:0 ~seq ~t:(float_of_int seq)))
  done;
  let committed = ref 0 in
  let pending = ref [] in
  for seq = 1 to writes do
    pending := { Write.origin = 0; seq } :: !pending;
    if seq mod batch = 0 || seq = writes then begin
      committed := !committed + Wlog.commit_ids log (List.rev !pending);
      pending := []
    end
  done;
  assert (!committed = writes);
  assert (Wlog.committed_count log = writes);
  assert (Wlog.tentative log = [])

(* Two origins with interleaved timestamps where one origin's stream is
   delivered [lag] writes behind the other: every second insert lands [lag]
   positions short of the tail of the tentative suffix — the WAN-jitter
   out-of-order arrival pattern. *)
let kernel_insert_storm ~writes ?(lag = 64) () =
  let log = Wlog.create ~replicas:3 ~initial:[] in
  let half = writes / 2 in
  for i = 1 to half + lag do
    if i <= half then
      ignore (Wlog.insert log (bench_write ~origin:0 ~seq:i ~t:(float_of_int (2 * i))));
    if i > lag then begin
      let j = i - lag in
      ignore
        (Wlog.insert log (bench_write ~origin:1 ~seq:j ~t:(float_of_int ((2 * j) - 1))))
    end
  done;
  assert (Wlog.num_known log = 2 * half);
  (* The full image saw every write exactly once despite the reordering. *)
  assert (Db.get_float (Wlog.db log) "x" = float_of_int (2 * half))

(* End-to-end served-access throughput: a 2-replica system under a
   read-mostly open-loop workload with weak bounds, stability commitment and
   fast gossip, so the committed prefix grows throughout the run.  Measures
   the whole serve path: admission, observation capture, commit progress. *)
let kernel_serve ~accesses () =
  let open Tact_sim in
  let open Tact_core in
  let open Tact_replica in
  let topology = Topology.uniform ~n:2 ~latency:0.005 ~bandwidth:1e9 in
  let config =
    {
      Config.default with
      Config.conits = [ Conit.declare "c" ];
      antientropy_period = Some 0.05;
    }
  in
  let sys = System.create ~seed:1 ~jitter:0.0 ~topology ~config () in
  let engine = System.engine sys in
  let served = ref 0 in
  let dt = 0.01 in
  for i = 0 to accesses - 1 do
    let r = System.replica sys (i mod 2) in
    Engine.at engine ~time:(float_of_int i *. dt) (fun () ->
        if i mod 4 = 0 then
          Replica.submit_write r ~deps:[]
            ~affects:[ { Write.conit = "c"; nweight = 1.0; oweight = 1.0 } ]
            ~op:(Op.Add ("x", 1.0))
            ~k:(fun _ -> incr served)
        else
          Replica.submit_read r ~deps:[]
            ~f:(fun db -> Db.get db "x")
            ~k:(fun _ -> incr served))
  done;
  System.run ~until:((float_of_int accesses *. dt) +. 60.0) sys;
  assert (!served = accesses);
  assert (System.converged sys)

(* Anti-entropy delta extraction: one sender's write log holding [writes]
   writes spread over [replicas] origins with interleaved timestamps, queried
   for the deltas owed to peers at several lags.  Runs the k-way-merge
   [Wlog.writes_since] against a faithful re-creation of the seed algorithm
   (per-(origin,seq) Hashtbl probe + List.sort) over the same data, asserting
   identical output, and reports both timings. *)
type ws_result = {
  ws_writes : int;
  ws_replicas : int;
  ws_reps : int;
  ws_reference_s : float;
  ws_merge_s : float;
}

let kernel_writes_since ~writes ~replicas ~reps () =
  let log = Wlog.create ~replicas ~initial:[] in
  for i = 0 to writes - 1 do
    let origin = i mod replicas and seq = (i / replicas) + 1 in
    ignore (Wlog.insert log (bench_write ~origin ~seq ~t:(float_of_int i)))
  done;
  let zero = Version_vector.create replicas in
  let full = Wlog.writes_since log zero in
  let by_id = Hashtbl.create (2 * writes) in
  List.iter (fun (w : Write.t) -> Hashtbl.replace by_id w.id w) full;
  let vec = Wlog.vector log in
  let reference have =
    let out = ref [] in
    for origin = 0 to replicas - 1 do
      for
        seq = Version_vector.get have origin + 1 to Version_vector.get vec origin
      do
        match Hashtbl.find_opt by_id { Write.origin; seq } with
        | Some w -> out := w :: !out
        | None -> assert false
      done
    done;
    List.sort Write.ts_compare !out
  in
  (* Peers at full, half and 10% lag — the shapes anti-entropy actually
     serves: initial sync, a stale peer, steady-state gossip. *)
  let lagged frac =
    let v = Version_vector.create replicas in
    for o = 0 to replicas - 1 do
      let n = Version_vector.get vec o in
      Version_vector.set v o (n - int_of_float (frac *. float_of_int n))
    done;
    v
  in
  let haves = [ zero; lagged 0.5; lagged 0.1 ] in
  List.iter
    (fun have ->
      let a = Wlog.writes_since log have and b = reference have in
      assert (List.length a = List.length b);
      List.iter2 (fun (x : Write.t) (y : Write.t) -> assert (x.id = y.id)) a b)
    haves;
  let time f =
    let t0 = Unix.gettimeofday () in
    for _ = 1 to reps do
      List.iter (fun have -> ignore (f have)) haves
    done;
    Unix.gettimeofday () -. t0
  in
  let ws_reference_s = time reference in
  let ws_merge_s = time (Wlog.writes_since log) in
  { ws_writes = writes; ws_replicas = replicas; ws_reps = reps; ws_reference_s;
    ws_merge_s }

(* Parallel schedule exploration: the checker's weak-converge scenario with
   reductions off (every interleaving executes), explored at each job count.
   The verdict and statistics are identical at any job count — only the wall
   clock may differ, and only on a multicore host. *)
type ps_result = { ps_jobs : int; ps_seconds : float; ps_schedules : int }

let pool_scaling ~jobs_list ~preemptions ~max_schedules () =
  let sc =
    match Tact_check.Scenario.find "weak-converge" with
    | Some s -> s
    | None -> assert false
  in
  let options =
    { Tact_check.Explorer.default_options with
      preemptions; dedup = false; prune = false; max_schedules }
  in
  let results =
    List.map
      (fun jobs ->
        let t0 = Unix.gettimeofday () in
        let o = Tact_check.Explorer.explore ~options ~jobs sc in
        let dt = Unix.gettimeofday () -. t0 in
        (match o.counterexample with
        | None -> ()
        | Some _ -> assert false);
        { ps_jobs = jobs; ps_seconds = dt; ps_schedules = o.stats.schedules })
      jobs_list
  in
  (match results with
  | r0 :: rest ->
    List.iter (fun r -> assert (r.ps_schedules = r0.ps_schedules)) rest
  | [] -> ());
  results

(* Nemesis fault campaign: [runs] seeded fault-injected simulations back to
   back — plan sampling, fault-schedule install, full run, O1-O6 oracle
   sweep.  A clean-seed campaign must pass everywhere; the digest length
   check guards the jobs-invariance witness itself. *)
let kernel_nemesis_campaign ~runs ?(jobs = 1) () =
  let open Tact_nemesis in
  let summary =
    Campaign.run { Campaign.default with Campaign.master_seed = 7; runs; jobs }
  in
  assert (summary.Campaign.completed = runs);
  assert (summary.Campaign.failures = []);
  assert (String.length summary.Campaign.digest = 16)

type kernel_result = {
  kr_name : string;
  kr_param : int;
  kr_seconds : float;
  kr_seed_seconds : float option;  (* measured at the seed commit, same kernel *)
}

(* Seed-implementation timings (list-backed wlog, eager observation capture),
   measured on this machine at the seed commit with this same harness.  Kept
   here so BENCH_PR1.json carries the before/after trajectory. *)
let seed_baseline =
  [
    (("wlog_accept_commit", 10_000), 2.084738);
    (("wlog_accept_commit", 30_000), 26.763079);
    (("wlog_insert_storm", 10_000), 5.140419);
    (("wlog_insert_storm", 30_000), 83.938200);
    (("replica_serve", 10_000), 3.710860);
  ]

let time_kernel (name, param, f) =
  let t0 = Unix.gettimeofday () in
  f ();
  let dt = Unix.gettimeofday () -. t0 in
  { kr_name = name; kr_param = param; kr_seconds = dt;
    kr_seed_seconds = List.assoc_opt (name, param) seed_baseline }

let print_kernel r =
  Printf.printf "%-28s n=%-7d %10.3f s%s\n%!" r.kr_name r.kr_param r.kr_seconds
    (match r.kr_seed_seconds with
    | Some s ->
      Printf.sprintf "   (seed: %.3f s, %.1fx)" s
        (s /. Float.max r.kr_seconds 1e-9)
    | None -> "")

let scaling_kernel_specs =
  [
    ("wlog_accept_commit", 10_000, fun () -> kernel_accept_commit ~writes:10_000 ());
    ("wlog_accept_commit", 30_000, fun () -> kernel_accept_commit ~writes:30_000 ());
    ("wlog_insert_storm", 10_000, fun () -> kernel_insert_storm ~writes:10_000 ());
    ("wlog_insert_storm", 30_000, fun () -> kernel_insert_storm ~writes:30_000 ());
    ("replica_serve", 10_000, fun () -> kernel_serve ~accesses:10_000 ());
    ("nemesis_campaign", 500, fun () -> kernel_nemesis_campaign ~runs:500 ());
  ]

(* With [jobs > 1] the kernels themselves run concurrently on a pool (each
   still times itself with its own wall clock); printing happens after
   collection so lines never interleave. *)
let scaling_kernels ~jobs () =
  if jobs <= 1 then
    List.map
      (fun spec ->
        let r = time_kernel spec in
        print_kernel r;
        r)
      scaling_kernel_specs
  else begin
    let results =
      Tact_util.Pool.with_pool ~jobs (fun pool ->
          Tact_util.Pool.map_list pool time_kernel scaling_kernel_specs)
    in
    List.iter print_kernel results;
    results
  end

(* ------------------------------------------------------------------ *)
(* PR6 kernels: batched delta anti-entropy vs per-write transfers      *)

(* End-to-end traffic under each sync mode, same workload: a tight NE bound
   (every write overruns it, so every write triggers a push to every peer)
   fed by a millisecond-spaced write train.  Per-write mode ships one
   Transfer per trigger; batched mode coalesces everything inside a flush
   window into one frame per peer.  The message/byte counts are the wire
   story; the run must converge in both modes. *)
type sync_traffic = {
  st_messages : int;
  st_bytes : int;
  st_max_frame : int;
  st_batches : int;
  st_seconds : float;
}

let run_sync_traffic ~sync ~writes () =
  let open Tact_sim in
  let open Tact_replica in
  let open Tact_store in
  let topology = Topology.uniform ~n:4 ~latency:0.02 ~bandwidth:1e8 in
  let config =
    {
      Config.default with
      Config.conits = [ Tact_core.Conit.declare ~ne_bound:1.0 "c" ];
      antientropy_period = Some 1.0;
      sync;
      batch_flush = 0.05;
    }
  in
  let sys = System.create ~seed:6 ~jitter:0.02 ~topology ~config () in
  let engine = System.engine sys in
  for k = 1 to writes do
    Engine.schedule engine ~delay:(0.001 *. float_of_int k) (fun () ->
        Replica.submit_write (System.replica sys 0) ~deps:[]
          ~affects:[ { Write.conit = "c"; nweight = 1.0; oweight = 1.0 } ]
          ~op:(Op.Add ("x", 1.0))
          ~k:ignore)
  done;
  let t0 = Unix.gettimeofday () in
  System.run ~until:((0.001 *. float_of_int writes) +. 10.0) sys;
  let dt = Unix.gettimeofday () -. t0 in
  assert (System.converged sys);
  let tr = System.traffic sys in
  {
    st_messages = tr.Net.messages;
    st_bytes = tr.Net.bytes;
    st_max_frame = tr.Net.max_message;
    st_batches = (System.total_stats sys).Replica.batches;
    st_seconds = dt;
  }

(* Encode-path allocations per sync round: the same round payload pushed
   through (a) the naive path — a fresh buffer per write, as the per-write
   mode would serialise — and (b) the reusable [Codec.Frame] arena, one
   buffer for the whole run, one [contents] handoff per round.  Buffer
   allocations are counted directly: one per [write_to_string] call on the
   naive path, [Frame.allocations] (initial + growths, amortised zero) on
   the arena path. *)
type round_alloc = {
  ra_rounds : int;
  ra_per_round : int;
  ra_naive_allocs : int;
  ra_arena_allocs : int;
  ra_naive_seconds : float;
  ra_arena_seconds : float;
}

let kernel_round_alloc ~rounds ~per_round () =
  let open Tact_store in
  let mk seq =
    Write.make
      ~id:{ Write.origin = 0; seq }
      ~accept_time:(0.001 *. float_of_int seq)
      ~op:(Op.Add ("x", 1.0))
      ~affects:[ { Write.conit = "c"; nweight = 1.0; oweight = 1.0 } ]
  in
  let round r = List.init per_round (fun i -> mk ((r * per_round) + i + 1)) in
  let naive_allocs = ref 0 in
  let t0 = Unix.gettimeofday () in
  let sink = ref 0 in
  for r = 0 to rounds - 1 do
    List.iter
      (fun w ->
        incr naive_allocs;
        sink := !sink + String.length (Codec.write_to_string w))
      (round r)
  done;
  let naive_s = Unix.gettimeofday () -. t0 in
  let frame = Codec.Frame.create () in
  let t1 = Unix.gettimeofday () in
  for r = 0 to rounds - 1 do
    Codec.Frame.clear frame;
    List.iter (fun w -> Codec.encode_write frame w) (round r);
    sink := !sink + String.length (Codec.Frame.contents frame)
  done;
  let arena_s = Unix.gettimeofday () -. t1 in
  assert (!sink > 0);
  {
    ra_rounds = rounds;
    ra_per_round = per_round;
    ra_naive_allocs = !naive_allocs;
    ra_arena_allocs = Codec.Frame.allocations frame;
    ra_naive_seconds = naive_s;
    ra_arena_seconds = arena_s;
  }

let pr6_json_report ~cores ~pw ~bt ~ra =
  let b = Buffer.create 2048 in
  Buffer.add_string b
    (Printf.sprintf "{\n  \"cores\": %d,\n  \"ocaml_version\": %S,\n" cores
       Sys.ocaml_version);
  Buffer.add_string b
    (Printf.sprintf
       "  \"kernels\": [\n\
       \    {\"name\": \"sync_traffic_per_write\", \"n\": %d, \"seconds\": \
        %.6f},\n\
       \    {\"name\": \"sync_traffic_batched\", \"n\": %d, \"seconds\": \
        %.6f},\n\
       \    {\"name\": \"round_encode_naive\", \"n\": %d, \"seconds\": %.6f},\n\
       \    {\"name\": \"round_encode_arena\", \"n\": %d, \"seconds\": %.6f}\n\
       \  ],\n"
       pw.st_messages pw.st_seconds bt.st_messages bt.st_seconds
       (ra.ra_rounds * ra.ra_per_round)
       ra.ra_naive_seconds
       (ra.ra_rounds * ra.ra_per_round)
       ra.ra_arena_seconds);
  Buffer.add_string b
    (Printf.sprintf
       "  \"sync_traffic\": {\"per_write_messages\": %d, \"batched_messages\": \
        %d, \"message_reduction\": %.1f, \"per_write_bytes\": %d, \
        \"batched_bytes\": %d, \"byte_reduction\": %.1f, \"batched_frames\": \
        %d, \"batched_max_frame\": %d},\n"
       pw.st_messages bt.st_messages
       (float_of_int pw.st_messages /. float_of_int (max 1 bt.st_messages))
       pw.st_bytes bt.st_bytes
       (float_of_int pw.st_bytes /. float_of_int (max 1 bt.st_bytes))
       bt.st_batches bt.st_max_frame);
  let per_round n = float_of_int n /. float_of_int ra.ra_rounds in
  Buffer.add_string b
    (Printf.sprintf
       "  \"round_alloc\": {\"rounds\": %d, \"writes_per_round\": %d, \
        \"naive_allocs_per_round\": %.2f, \"arena_allocs_per_round\": %.4f, \
        \"alloc_reduction\": %.1f, \"naive_round_ns\": %.0f, \
        \"arena_round_ns\": %.0f}\n}\n"
       ra.ra_rounds ra.ra_per_round
       (per_round ra.ra_naive_allocs)
       (per_round ra.ra_arena_allocs)
       (float_of_int ra.ra_naive_allocs
       /. Float.max (float_of_int ra.ra_arena_allocs) 1e-9)
       (ra.ra_naive_seconds *. 1e9 /. float_of_int ra.ra_rounds)
       (ra.ra_arena_seconds *. 1e9 /. float_of_int ra.ra_rounds));
  Buffer.contents b

let run_pr6 ~path =
  Printf.printf "Batched anti-entropy kernels (PR6)\n%s\n" (String.make 78 '-');
  let pw = run_sync_traffic ~sync:Tact_replica.Config.Per_write ~writes:600 () in
  let bt = run_sync_traffic ~sync:Tact_replica.Config.Batched ~writes:600 () in
  Printf.printf
    "%-28s per-write %7d msgs %9d B   batched %5d msgs %8d B  (%.1fx / %.1fx)\n%!"
    "sync_traffic" pw.st_messages pw.st_bytes bt.st_messages bt.st_bytes
    (float_of_int pw.st_messages /. float_of_int (max 1 bt.st_messages))
    (float_of_int pw.st_bytes /. float_of_int (max 1 bt.st_bytes));
  let ra = kernel_round_alloc ~rounds:2_000 ~per_round:24 () in
  Printf.printf
    "%-28s naive %.1f allocs/round   arena %.4f allocs/round  (%.0fx)\n%!"
    "round_alloc"
    (float_of_int ra.ra_naive_allocs /. float_of_int ra.ra_rounds)
    (float_of_int ra.ra_arena_allocs /. float_of_int ra.ra_rounds)
    (float_of_int ra.ra_naive_allocs
    /. Float.max (float_of_int ra.ra_arena_allocs) 1e-9);
  Printf.printf "%-28s naive %8.0f ns/round   arena %8.0f ns/round\n%!"
    "round_latency"
    (ra.ra_naive_seconds *. 1e9 /. float_of_int ra.ra_rounds)
    (ra.ra_arena_seconds *. 1e9 /. float_of_int ra.ra_rounds);
  let cores = Domain.recommended_domain_count () in
  let oc = open_out path in
  output_string oc (pr6_json_report ~cores ~pw ~bt ~ra);
  close_out oc;
  Printf.printf "wrote %s (cores=%d, ocaml %s)\n" path cores Sys.ocaml_version

(* ------------------------------------------------------------------ *)
(* PR9 kernels: flat wlog index, sharded conit space                   *)

(* The per-delivery bookkeeping trace the write log executes: register the
   write (duplicate-check + store), record its tentative outcome, then in
   commit batches mark it committed and store the final outcome, and
   finally shed it at truncation.  [wlog_index] runs this exact trace twice
   in the same binary: against a mirror of the seed's Write.id-keyed
   Hashtbl bookkeeping (four tables) and against a mirror of the flat
   per-origin slot index that replaced it — the before/after pin for the
   index swap.  [wlog_index_delivery] anchors the end-to-end number: the
   real Wlog insert+commit path at E22 delivery scale. *)
type wi_result = {
  wi_writes : int;
  wi_delivery_s : float;
  wi_flat_s : float;
  wi_hashtbl_s : float;
}

let kernel_wlog_index ~origins ~per_origin ~commit_batch () =
  let writes = origins * per_origin in
  (* End-to-end: in-order per-origin delivery (the E22 ring shape), periodic
     stability commitment, an outcome probe per delivery. *)
  let log = Wlog.create ~replicas:(origins + 1) ~initial:[] in
  let t0 = Unix.gettimeofday () in
  for seq = 1 to per_origin do
    for o = 1 to origins do
      let t = (float_of_int seq *. float_of_int origins) +. float_of_int o in
      ignore (Wlog.insert log (bench_write ~origin:o ~seq ~t));
      assert (Wlog.outcome log { Write.origin = o; seq } <> None)
    done;
    if seq mod commit_batch = 0 || seq = per_origin then begin
      let cover = Array.make (origins + 1) infinity in
      ignore (Wlog.commit_stable log ~cover)
    end
  done;
  let delivery_s = Unix.gettimeofday () -. t0 in
  assert (Wlog.num_known log = writes);
  assert (Wlog.committed_count log = writes);
  (* Bookkeeping-only replay of the same trace, first against the flat
     per-origin slot index... *)
  let module Flat = struct
    type slot = {
      mutable s_w : Write.t option;
      mutable s_out : int;
      mutable s_final : int;
      mutable s_comm : bool;
    }
  end in
  let open Flat in
  let flat =
    Array.init (origins + 1) (fun _ ->
        Array.init per_origin (fun _ ->
            { s_w = None; s_out = 0; s_final = 0; s_comm = false }))
  in
  let mk = bench_write in
  let t1 = Unix.gettimeofday () in
  for seq = 1 to per_origin do
    for o = 1 to origins do
      let s = flat.(o).(seq - 1) in
      assert (s.s_w = None);  (* duplicate check *)
      s.s_w <- Some (mk ~origin:o ~seq ~t:(float_of_int seq));
      s.s_out <- seq
    done;
    if seq mod commit_batch = 0 || seq = per_origin then
      for b = seq - commit_batch + 1 to seq do
        if b >= 1 then
          for o = 1 to origins do
            let s = flat.(o).(b - 1) in
            if not s.s_comm then begin
              s.s_comm <- true;
              s.s_final <- b
            end
          done
      done
  done;
  for o = 1 to origins do
    for i = 0 to per_origin - 1 do
      flat.(o).(i).s_w <- None  (* truncation shed *)
    done
  done;
  let flat_s = Unix.gettimeofday () -. t1 in
  (* ...then against the seed's four Hashtbls. *)
  let by_id : (Write.id, Write.t) Hashtbl.t = Hashtbl.create 1024 in
  let committed_ids : (Write.id, unit) Hashtbl.t = Hashtbl.create 1024 in
  let outcomes : (Write.id, int) Hashtbl.t = Hashtbl.create 1024 in
  let finals : (Write.id, int) Hashtbl.t = Hashtbl.create 1024 in
  let t2 = Unix.gettimeofday () in
  for seq = 1 to per_origin do
    for o = 1 to origins do
      let id = { Write.origin = o; seq } in
      assert (Hashtbl.find_opt by_id id = None);  (* duplicate check *)
      Hashtbl.replace by_id id (mk ~origin:o ~seq ~t:(float_of_int seq));
      Hashtbl.replace outcomes id seq
    done;
    if seq mod commit_batch = 0 || seq = per_origin then
      for b = seq - commit_batch + 1 to seq do
        if b >= 1 then
          for o = 1 to origins do
            let id = { Write.origin = o; seq = b } in
            if not (Hashtbl.mem committed_ids id) then begin
              Hashtbl.replace committed_ids id ();
              Hashtbl.replace finals id b
            end
          done
      done
  done;
  for o = 1 to origins do
    for seq = 1 to per_origin do
      Hashtbl.remove by_id { Write.origin = o; seq }  (* truncation shed *)
    done
  done;
  let hashtbl_s = Unix.gettimeofday () -. t2 in
  assert (Hashtbl.length by_id = 0);
  assert (Array.for_all (Array.for_all (fun s -> s.s_w = None)) flat);
  { wi_writes = writes; wi_delivery_s = delivery_s; wi_flat_s = flat_s;
    wi_hashtbl_s = hashtbl_s }

(* The sharded workload the scaling and overhead kernels share: [shards]
   shards over [n] replicas, conits pinned round-robin, [total] writes
   spread millisecond-spaced across the shards, batched sync.  Building is
   deterministic, so two instances run at different job counts must produce
   byte-identical digests. *)
let build_sharded_workload ~n ~shards ~overlap ~total () =
  let open Tact_sim in
  let open Tact_replica in
  let nconits = 2 * shards in
  let conit_name k = Printf.sprintf "c%02d" k in
  let router =
    Shard.with_table (Shard.by_hash ~shards)
      (List.init nconits (fun k -> (conit_name k, k mod shards)))
  in
  let interest r =
    List.init overlap (fun i -> (r + i) mod shards) |> List.sort_uniq Int.compare
  in
  let config =
    {
      Config.default with
      Config.antientropy_period = Some 0.5;
      sync = Config.Batched;
      batch_flush = 0.05;
      record_accesses = false;
      shards;
      interest = (if overlap >= shards then None else Some interest);
    }
  in
  let topology = Topology.uniform ~n ~latency:0.02 ~bandwidth:1e8 in
  let sh = Sharded.create ~seed:9 ~jitter:0.02 ~router ~topology ~config () in
  for k = 0 to total - 1 do
    let s = k mod shards in
    let conit = conit_name ((k mod nconits / shards * shards) + s) in
    let members = Sharded.members sh s in
    let writer = members.(k mod Array.length members) in
    Engine.at (Sharded.engine sh ~shard:s)
      ~time:(0.001 *. float_of_int (k + 1))
      (fun () ->
        Sharded.submit_write sh ~replica:writer ~deps:[]
          ~affects:[ { Write.conit; nweight = 1.0; oweight = 1.0 } ]
          ~op:(Op.Add ("x:" ^ conit, 1.0))
          ~k:ignore)
  done;
  (sh, (0.001 *. float_of_int total) +. 20.0)

(* Same shape, unsharded: the plain-System twin of the 1-shard instance. *)
let build_plain_workload ~n ~total () =
  let open Tact_sim in
  let open Tact_replica in
  let config =
    {
      Config.default with
      Config.antientropy_period = Some 0.5;
      sync = Config.Batched;
      batch_flush = 0.05;
      record_accesses = false;
    }
  in
  let topology = Topology.uniform ~n ~latency:0.02 ~bandwidth:1e8 in
  let sys = System.create ~seed:9 ~jitter:0.02 ~topology ~config () in
  for k = 0 to total - 1 do
    let conit = Printf.sprintf "c%02d" (k mod 2) in
    let writer = k mod n in
    Engine.at (System.engine sys)
      ~time:(0.001 *. float_of_int (k + 1))
      (fun () ->
        Replica.submit_write (System.replica sys writer) ~deps:[]
          ~affects:[ { Write.conit; nweight = 1.0; oweight = 1.0 } ]
          ~op:(Op.Add ("x:" ^ conit, 1.0))
          ~k:ignore)
  done;
  (sys, (0.001 *. float_of_int total) +. 20.0)

(* 1-shard sharded vs plain System on the same workload: the wrapper's cost
   when sharding buys nothing.  The acceptance bar on a 1-core host is a
   ratio within a few percent. *)
type so_result = { so_total : int; so_plain_s : float; so_sharded_s : float }

let kernel_shard_overhead ~n ~total () =
  let open Tact_replica in
  let sys, horizon = build_plain_workload ~n ~total () in
  let t0 = Unix.gettimeofday () in
  System.run ~until:horizon sys;
  let plain_s = Unix.gettimeofday () -. t0 in
  assert (System.converged sys);
  let sh, horizon = build_sharded_workload ~n ~shards:1 ~overlap:1 ~total () in
  let t1 = Unix.gettimeofday () in
  Sharded.run ~jobs:1 ~until:horizon sh;
  let sharded_s = Unix.gettimeofday () -. t1 in
  assert (Sharded.converged sh);
  { so_total = total; so_plain_s = plain_s; so_sharded_s = sharded_s }

(* Shard engines across pool domains: fresh instances of the same workload
   at each job count, digests asserted byte-identical, wall clock recorded.
   Speedup needs real cores; on a 1-core host the point of the kernel is
   that the digests still match. *)
type ss_result = { ss_jobs : int; ss_seconds : float }

let kernel_shard_scaling ~n ~shards ~overlap ~total ~jobs_list () =
  let open Tact_replica in
  let digests = ref [] in
  let results =
    List.map
      (fun jobs ->
        let sh, horizon =
          build_sharded_workload ~n ~shards ~overlap ~total ()
        in
        let t0 = Unix.gettimeofday () in
        Sharded.run ~jobs ~until:horizon sh;
        let dt = Unix.gettimeofday () -. t0 in
        assert (Sharded.converged sh);
        assert (Sharded.shard_leaks sh = []);
        digests := Sharded.digest sh :: !digests;
        { ss_jobs = jobs; ss_seconds = dt })
      jobs_list
  in
  (match !digests with
  | d0 :: rest -> List.iter (fun d -> assert (String.equal d d0)) rest
  | [] -> ());
  results

let pr9_json_report ~cores ~wi ~so ~ss ~st =
  let b = Buffer.create 2048 in
  Buffer.add_string b
    (Printf.sprintf "{\n  \"cores\": %d,\n  \"ocaml_version\": %S,\n" cores
       Sys.ocaml_version);
  Buffer.add_string b "  \"kernels\": [\n";
  let kernel ?(last = false) name n seconds =
    Buffer.add_string b
      (Printf.sprintf "    {\"name\": %S, \"n\": %d, \"seconds\": %.6f}%s\n"
         name n seconds
         (if last then "" else ","))
  in
  kernel "wlog_index_delivery" wi.wi_writes wi.wi_delivery_s;
  kernel "wlog_index_flat" wi.wi_writes wi.wi_flat_s;
  kernel "wlog_index_hashtbl" wi.wi_writes wi.wi_hashtbl_s;
  kernel "shard_overhead_plain" so.so_total so.so_plain_s;
  kernel "shard_overhead_sharded1" so.so_total so.so_sharded_s;
  List.iter
    (fun r ->
      kernel (Printf.sprintf "shard_scaling_j%d" r.ss_jobs) 1 r.ss_seconds)
    ss;
  kernel ~last:true "sync_traffic_batched" st.st_messages st.st_seconds;
  Buffer.add_string b "  ],\n";
  Buffer.add_string b
    (Printf.sprintf
       "  \"wlog_index\": {\"writes\": %d, \"delivery_ns_per_write\": %.0f, \
        \"flat_ns_per_op\": %.1f, \"hashtbl_ns_per_op\": %.1f, \
        \"bookkeeping_speedup\": %.2f},\n"
       wi.wi_writes
       (wi.wi_delivery_s *. 1e9 /. float_of_int wi.wi_writes)
       (wi.wi_flat_s *. 1e9 /. float_of_int wi.wi_writes)
       (wi.wi_hashtbl_s *. 1e9 /. float_of_int wi.wi_writes)
       (wi.wi_hashtbl_s /. Float.max wi.wi_flat_s 1e-9));
  Buffer.add_string b
    (Printf.sprintf
       "  \"shard_overhead\": {\"writes\": %d, \"plain_seconds\": %.6f, \
        \"sharded1_seconds\": %.6f, \"overhead_ratio\": %.4f},\n"
       so.so_total so.so_plain_s so.so_sharded_s
       (so.so_sharded_s /. Float.max so.so_plain_s 1e-9));
  let base = match ss with r :: _ -> r.ss_seconds | [] -> 0.0 in
  Buffer.add_string b "  \"shard_scaling\": {\"digests_identical\": true, \"points\": [\n";
  List.iteri
    (fun i r ->
      if i > 0 then Buffer.add_string b ",\n";
      Buffer.add_string b
        (Printf.sprintf
           "    {\"jobs\": %d, \"seconds\": %.6f, \"speedup_vs_jobs1\": %.2f}"
           r.ss_jobs r.ss_seconds
           (base /. Float.max r.ss_seconds 1e-9)))
    ss;
  Buffer.add_string b "\n  ]}\n}\n";
  Buffer.contents b

let run_pr9 ~path =
  Printf.printf "Sharded conit space kernels (PR9)\n%s\n" (String.make 78 '-');
  let wi = kernel_wlog_index ~origins:16 ~per_origin:4_000 ~commit_batch:64 () in
  Printf.printf
    "%-28s n=%-7d delivery %6.0f ns/write   flat %5.1f ns/op   hashtbl %5.1f \
     ns/op (%.1fx)\n%!"
    "wlog_index" wi.wi_writes
    (wi.wi_delivery_s *. 1e9 /. float_of_int wi.wi_writes)
    (wi.wi_flat_s *. 1e9 /. float_of_int wi.wi_writes)
    (wi.wi_hashtbl_s *. 1e9 /. float_of_int wi.wi_writes)
    (wi.wi_hashtbl_s /. Float.max wi.wi_flat_s 1e-9);
  let so = kernel_shard_overhead ~n:4 ~total:4_000 () in
  Printf.printf
    "%-28s n=%-7d plain %7.3f s   sharded(1) %7.3f s   ratio %.3f\n%!"
    "shard_overhead" so.so_total so.so_plain_s so.so_sharded_s
    (so.so_sharded_s /. Float.max so.so_plain_s 1e-9);
  let ss =
    kernel_shard_scaling ~n:8 ~shards:4 ~overlap:2 ~total:6_000
      ~jobs_list:[ 1; 2; 4 ] ()
  in
  List.iter
    (fun r ->
      Printf.printf "%-28s jobs=%-4d %10.3f s\n%!" "shard_scaling" r.ss_jobs
        r.ss_seconds)
    ss;
  let st = run_sync_traffic ~sync:Tact_replica.Config.Batched ~writes:600 () in
  Printf.printf "%-28s %7d msgs %9d B\n%!" "sync_traffic_batched"
    st.st_messages st.st_bytes;
  let cores = Domain.recommended_domain_count () in
  let oc = open_out path in
  output_string oc (pr9_json_report ~cores ~wi ~so ~ss ~st);
  close_out oc;
  Printf.printf "wrote %s (cores=%d, ocaml %s)\n" path cores Sys.ocaml_version

(* ------------------------------------------------------------------ *)
(* PR10 kernels: loopback throughput of the hardened TCP transport     *)

(* Wall-clock throughput of the real-socket backend: two {!Tact_transport.Tcp}
   instances on one event loop, loopback TCP, [frames] payloads of [size]
   bytes pushed 0 -> 1 with a bounded in-flight window while the loop pumps.
   Measures the full framed path — enqueue, 4-byte length prefix,
   nonblocking writes, accept-side reassembly, per-frame delivery — the
   live-service twin of the simulator's sync-traffic kernel. *)

type tt_result = { tt_frames : int; tt_size : int; tt_seconds : float }

let fresh_loopback_ports n =
  let fds =
    List.init n (fun _ ->
        let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
        Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_loopback, 0));
        fd)
  in
  let ports =
    List.map
      (fun fd ->
        match Unix.getsockname fd with
        | Unix.ADDR_INET (_, p) -> p
        | _ -> assert false)
      fds
  in
  List.iter Unix.close fds;
  ports

let kernel_transport_throughput ~frames ~size () =
  let module L = Tact_transport.Loop in
  let module Tcp = Tact_transport.Tcp in
  let loop = L.create () in
  let addrs =
    fresh_loopback_ports 2
    |> List.map (fun p -> Unix.ADDR_INET (Unix.inet_addr_loopback, p))
    |> Array.of_list
  in
  let knobs =
    {
      Tact_replica.Config.default_transport with
      Tact_replica.Config.backoff_base = 0.005;
      half_open_after = 60.0;
    }
  in
  let mk self =
    Tcp.create ~loop ~self ~addrs ~knobs
      ~rng:(Tact_util.Prng.create ~seed:(40 + self))
      ()
  in
  let t0 = mk 0 and t1 = mk 1 in
  let got = ref 0 in
  Tcp.set_handler t1 (fun ~src:_ payload ->
      if String.length payload = size then incr got);
  Tcp.listen t0 ~addr:addrs.(0);
  Tcp.listen t1 ~addr:addrs.(1);
  let setup_deadline = Unix.gettimeofday () +. 10.0 in
  while not (Tcp.peer_up t0 1) && Unix.gettimeofday () < setup_deadline do
    ignore (L.run_once ~max_wait:0.01 loop)
  done;
  assert (Tcp.peer_up t0 1);
  let payload = String.make size 'x' in
  let t_start = Unix.gettimeofday () in
  let deadline = t_start +. 60.0 in
  let sent = ref 0 in
  while !got < frames && Unix.gettimeofday () < deadline do
    (* A bounded window keeps the socket pipeline full without letting the
       outbound buffer balloon past what the kernel will absorb. *)
    while !sent < frames && !sent - !got < 64 do
      (match Tcp.send t0 ~dst:1 payload with Ok () -> () | Error _ -> ());
      incr sent
    done;
    ignore (L.run_once ~max_wait:0.01 loop)
  done;
  let dt = Unix.gettimeofday () -. t_start in
  assert (!got = frames);
  Tcp.close t0;
  Tcp.close t1;
  { tt_frames = frames; tt_size = size; tt_seconds = dt }

let tt_fps r = float_of_int r.tt_frames /. Float.max r.tt_seconds 1e-9

let tt_mbps r =
  float_of_int (r.tt_frames * r.tt_size)
  /. (1024.0 *. 1024.0)
  /. Float.max r.tt_seconds 1e-9

let pr10_json_report ~cores ~small ~large ~st =
  let b = Buffer.create 1024 in
  Buffer.add_string b
    (Printf.sprintf "{\n  \"cores\": %d,\n  \"ocaml_version\": %S,\n" cores
       Sys.ocaml_version);
  Buffer.add_string b "  \"kernels\": [\n";
  Buffer.add_string b
    (Printf.sprintf "    {\"name\": %S, \"n\": %d, \"seconds\": %.6f},\n"
       "transport_frames_256B" small.tt_frames small.tt_seconds);
  Buffer.add_string b
    (Printf.sprintf "    {\"name\": %S, \"n\": %d, \"seconds\": %.6f},\n"
       "transport_frames_64KiB" large.tt_frames large.tt_seconds);
  Buffer.add_string b
    (Printf.sprintf "    {\"name\": %S, \"n\": %d, \"seconds\": %.6f}\n"
       "sync_traffic_batched" st.st_messages st.st_seconds);
  Buffer.add_string b "  ],\n";
  Buffer.add_string b
    (Printf.sprintf
       "  \"transport_throughput\": {\"small_frames_per_s\": %.0f, \
        \"small_mib_per_s\": %.1f, \"large_frames_per_s\": %.0f, \
        \"large_mib_per_s\": %.1f}\n}\n"
       (tt_fps small) (tt_mbps small) (tt_fps large) (tt_mbps large));
  Buffer.contents b

let run_pr10 ~path =
  Printf.printf "Hardened TCP transport kernels (PR10)\n%s\n" (String.make 78 '-');
  let small = kernel_transport_throughput ~frames:20_000 ~size:256 () in
  Printf.printf "%-28s n=%-7d %9.3f s  %8.0f frames/s  %7.1f MiB/s\n%!"
    "transport_256B" small.tt_frames small.tt_seconds (tt_fps small)
    (tt_mbps small);
  let large = kernel_transport_throughput ~frames:2_000 ~size:65_536 () in
  Printf.printf "%-28s n=%-7d %9.3f s  %8.0f frames/s  %7.1f MiB/s\n%!"
    "transport_64KiB" large.tt_frames large.tt_seconds (tt_fps large)
    (tt_mbps large);
  let st = run_sync_traffic ~sync:Tact_replica.Config.Batched ~writes:600 () in
  Printf.printf "%-28s %7d msgs %9d B\n%!" "sync_traffic_batched" st.st_messages
    st.st_bytes;
  let cores = Domain.recommended_domain_count () in
  let oc = open_out path in
  output_string oc (pr10_json_report ~cores ~small ~large ~st);
  close_out oc;
  Printf.printf "wrote %s (cores=%d, ocaml %s)\n" path cores Sys.ocaml_version

(* ------------------------------------------------------------------ *)
(* --compare: per-kernel speedup between two bench json files          *)

(* Minimal scanner for the bench json we emit ourselves: pull each kernel
   object's "name" and "seconds".  Not a general JSON parser — enough for
   files this harness wrote. *)
let parse_kernels path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let src = really_input_string ic len in
  close_in ic;
  let out = ref [] in
  let n = String.length src in
  let find_from sub i =
    let sl = String.length sub in
    let rec go k =
      if k + sl > n then None
      else if String.sub src k sl = sub then Some k
      else go (k + 1)
    in
    go i
  in
  let rec scan i =
    match find_from "\"name\":" i with
    | None -> ()
    | Some k -> (
      match String.index_from_opt src k '"' with
      | None -> ()
      | Some _ -> (
        let q1 = String.index_from src (k + 7) '"' in
        let q2 = String.index_from src (q1 + 1) '"' in
        let name = String.sub src (q1 + 1) (q2 - q1 - 1) in
        match find_from "\"seconds\":" q2 with
        | None -> ()
        | Some s ->
          let v = ref (s + 10) in
          while !v < n && src.[!v] = ' ' do incr v done;
          let e = ref !v in
          while
            !e < n
            && (match src.[!e] with
               | '0' .. '9' | '.' | '-' | 'e' | 'E' | '+' -> true
               | _ -> false)
          do
            incr e
          done;
          out := (name, float_of_string (String.sub src !v (!e - !v))) :: !out;
          scan !e))
  in
  scan 0;
  List.rev !out

let run_compare a b =
  let ka = parse_kernels a and kb = parse_kernels b in
  Printf.printf "%-28s %12s %12s %9s\n" "kernel" (Filename.basename a)
    (Filename.basename b) "speedup";
  Printf.printf "%s\n" (String.make 64 '-');
  List.iter
    (fun (name, sa) ->
      match List.assoc_opt name kb with
      | None -> Printf.printf "%-28s %10.3f s %12s\n" name sa "(missing)"
      | Some sb ->
        Printf.printf "%-28s %10.3f s %10.3f s %8.2fx\n" name sa sb
          (sa /. Float.max sb 1e-9))
    ka;
  List.iter
    (fun (name, sb) ->
      if not (List.mem_assoc name ka) then
        Printf.printf "%-28s %12s %10.3f s\n" name "(missing)" sb)
    kb

let json_report ~cores ~jobs ~kernels ~ws ~ps =
  let buf = Buffer.create 2048 in
  Buffer.add_string buf
    (Printf.sprintf
       "{\n  \"cores\": %d,\n  \"ocaml_version\": %S,\n  \"jobs\": %d,\n\
       \  \"kernels\": [\n"
       cores Sys.ocaml_version jobs);
  List.iteri
    (fun i r ->
      if i > 0 then Buffer.add_string buf ",\n";
      Buffer.add_string buf
        (Printf.sprintf
           "    {\"name\": %S, \"n\": %d, \"seconds\": %.6f, \"per_op_ns\": %.1f"
           r.kr_name r.kr_param r.kr_seconds
           (r.kr_seconds *. 1e9 /. float_of_int r.kr_param));
      (match r.kr_seed_seconds with
      | Some s ->
        Buffer.add_string buf
          (Printf.sprintf ", \"seed_seconds\": %.6f, \"speedup_vs_seed\": %.2f" s
             (s /. Float.max r.kr_seconds 1e-9))
      | None -> ());
      Buffer.add_string buf "}")
    kernels;
  Buffer.add_string buf "\n  ],\n";
  Buffer.add_string buf
    (Printf.sprintf
       "  \"writes_since\": {\"writes\": %d, \"replicas\": %d, \"reps\": %d, \
        \"reference_seconds\": %.6f, \"merge_seconds\": %.6f, \
        \"speedup_vs_reference\": %.2f},\n"
       ws.ws_writes ws.ws_replicas ws.ws_reps ws.ws_reference_s ws.ws_merge_s
       (ws.ws_reference_s /. Float.max ws.ws_merge_s 1e-9));
  Buffer.add_string buf "  \"pool_scaling\": [\n";
  let base =
    match ps with r :: _ -> r.ps_seconds | [] -> 0.0
  in
  List.iteri
    (fun i r ->
      if i > 0 then Buffer.add_string buf ",\n";
      Buffer.add_string buf
        (Printf.sprintf
           "    {\"jobs\": %d, \"seconds\": %.6f, \"schedules\": %d, \
            \"speedup_vs_jobs1\": %.2f}"
           r.ps_jobs r.ps_seconds r.ps_schedules
           (base /. Float.max r.ps_seconds 1e-9)))
    ps;
  Buffer.add_string buf "\n  ]\n}\n";
  Buffer.contents buf

let run_json ~path ~jobs =
  Printf.printf "Scaling kernels (wall clock)\n%s\n" (String.make 78 '-');
  let kernels = scaling_kernels ~jobs () in
  let ws = kernel_writes_since ~writes:30_000 ~replicas:16 ~reps:10 () in
  Printf.printf "%-28s n=%-7d %10.3f s   (seed algorithm: %.3f s, %.1fx)\n%!"
    "wlog_writes_since" ws.ws_writes ws.ws_merge_s ws.ws_reference_s
    (ws.ws_reference_s /. Float.max ws.ws_merge_s 1e-9);
  let ps = pool_scaling ~jobs_list:[ 1; 2; 4 ] ~preemptions:3 ~max_schedules:0 () in
  List.iter
    (fun r ->
      Printf.printf "%-28s jobs=%-4d %10.3f s   (%d schedules)\n%!"
        "explorer_pool_scaling" r.ps_jobs r.ps_seconds r.ps_schedules)
    ps;
  let cores = Domain.recommended_domain_count () in
  let oc = open_out path in
  output_string oc (json_report ~cores ~jobs ~kernels ~ws ~ps);
  close_out oc;
  Printf.printf "wrote %s (cores=%d)\n" path cores

(* Tiny instances of every scaling kernel: a fast CI guard (wired into
   @bench-smoke / runtest) so the benchmark harness cannot bit-rot.  [-j N]
   additionally exercises the pooled paths. *)
let run_smoke ~jobs =
  kernel_accept_commit ~writes:256 ~batch:16 ();
  kernel_insert_storm ~writes:512 ~lag:16 ();
  kernel_serve ~accesses:100 ();
  kernel_nemesis_campaign ~runs:10 ~jobs:(max 1 jobs) ();
  ignore (kernel_writes_since ~writes:2_048 ~replicas:4 ~reps:1 ());
  ignore
    (pool_scaling
       ~jobs_list:[ 1; max 1 jobs ]
       ~preemptions:1 ~max_schedules:50 ());
  ignore (run_sync_traffic ~sync:Tact_replica.Config.Batched ~writes:40 ());
  ignore (kernel_round_alloc ~rounds:20 ~per_round:8 ());
  ignore (kernel_wlog_index ~origins:4 ~per_origin:64 ~commit_batch:16 ());
  ignore (kernel_shard_overhead ~n:3 ~total:200 ());
  ignore
    (kernel_shard_scaling ~n:4 ~shards:2 ~overlap:1 ~total:200
       ~jobs_list:[ 1; max 2 jobs ] ());
  ignore (kernel_transport_throughput ~frames:64 ~size:512 ());
  print_endline "bench smoke ok"

let () =
  let args = Array.to_list Sys.argv |> List.tl in
  let jobs = ref 1 in
  let rec strip_jobs = function
    | ("-j" | "--jobs") :: v :: rest ->
      jobs := int_of_string v;
      strip_jobs rest
    | a :: rest -> a :: strip_jobs rest
    | [] -> []
  in
  let args = strip_jobs args in
  let full = List.mem "--full" args in
  let no_micro = List.mem "--no-micro" args in
  let json = List.mem "--json" args in
  let smoke = List.mem "--smoke" args in
  let pr6 = List.mem "--pr6" args in
  let pr9 = List.mem "--pr9" args in
  let pr10 = List.mem "--pr10" args in
  let compare_files =
    match args with
    | "--compare" :: a :: b :: _ -> Some (a, b)
    | _ -> if List.mem "--compare" args then (
        prerr_endline "usage: bench --compare A.json B.json";
        exit 2)
      else None
  in
  let out =
    List.fold_left
      (fun acc a ->
        match String.index_opt a '=' with
        | Some i when String.length a > 6 && String.sub a 0 6 = "--out=" ->
          ignore i;
          String.sub a 6 (String.length a - 6)
        | _ -> acc)
      "BENCH_PR4.json" args
  in
  let only =
    List.filter (fun a -> not (String.length a >= 2 && String.sub a 0 2 = "--")) args
  in
  match compare_files with
  | Some (a, b) -> run_compare a b
  | None ->
  if smoke then run_smoke ~jobs:!jobs
  else if pr6 then
    run_pr6 ~path:(if out = "BENCH_PR4.json" then "BENCH_PR6.json" else out)
  else if pr9 then
    run_pr9 ~path:(if out = "BENCH_PR4.json" then "BENCH_PR9.json" else out)
  else if pr10 then
    run_pr10 ~path:(if out = "BENCH_PR4.json" then "BENCH_PR10.json" else out)
  else if json then run_json ~path:out ~jobs:!jobs
  else begin
    run_experiments ~quick:(not full) ~jobs:!jobs ~only;
    if not no_micro then run_micro ()
  end
