(* The benchmark harness.

   Part 1 regenerates every table and figure indexed in DESIGN.md §5 /
   EXPERIMENTS.md (one experiment per paper artifact, printed as tables and
   ASCII plots).  Part 2 runs Bechamel micro-benchmarks of the protocol
   kernels the experiments exercise.

   Part 3 runs the scaling kernels: wall-clock measurements of the hot paths
   (write-log accept/commit, out-of-order insert storms, end-to-end served
   accesses, anti-entropy delta extraction, parallel schedule exploration)
   at sizes where asymptotic costs dominate.  [--json] runs only those and
   writes a machine-readable trajectory file (BENCH_PR4.json) used to track
   the perf of these paths across PRs.

   Usage:
     dune exec bench/main.exe                 # quick experiments + micro
     dune exec bench/main.exe -- --full       # full-length experiments
     dune exec bench/main.exe -- --no-micro   # skip Bechamel
     dune exec bench/main.exe -- E3 E12       # a subset, by id or name
     dune exec bench/main.exe -- --json       # scaling kernels -> BENCH_PR4.json
     dune exec bench/main.exe -- --pr6        # batched-sync kernels -> BENCH_PR6.json
     dune exec bench/main.exe -- --compare A.json B.json  # per-kernel speedups
     dune exec bench/main.exe -- --smoke      # tiny kernel instances (CI guard)
     dune exec bench/main.exe -- -j 4         # run experiments/kernels on a
                                              # 4-domain pool *)

open Tact_experiments

let run_experiments ~quick ~jobs ~only =
  let selected =
    match only with
    | [] -> Registry.all
    | keys ->
      List.filter_map
        (fun k ->
          match Registry.find k with
          | Some e -> Some e
          | None ->
            Printf.printf
              "unknown experiment %S (use an id like E3 or a name like airline)\n" k;
            None)
        keys
  in
  let reports =
    if jobs <= 1 then
      List.map
        (fun (e : Registry.entry) ->
          let t0 = Unix.gettimeofday () in
          let report = e.run ~quick () in
          (e, report, Unix.gettimeofday () -. t0))
        selected
    else
      (* Experiments are independent simulations; their reports are the same
         at any job count, so run them on a pool and print in order after. *)
      Tact_util.Pool.with_pool ~jobs (fun pool ->
          Tact_util.Pool.map_list pool
            (fun (e : Registry.entry) ->
              let t0 = Unix.gettimeofday () in
              let report = e.run ~quick () in
              (e, report, Unix.gettimeofday () -. t0))
            selected)
  in
  List.iter
    (fun ((e : Registry.entry), report, dt) ->
      Printf.printf "\n%s\n" (String.make 78 '=');
      Printf.printf "%s [%s] — %s\n" e.id e.name e.paper_artifact;
      Printf.printf "%s\n" (String.make 78 '=');
      print_string report;
      Printf.printf "(%s ran in %.1fs)\n" e.id dt;
      flush stdout)
    reports

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks of the kernels underneath the experiments *)

open Bechamel
open Toolkit

let wlog_kernel ~writes () =
  let open Tact_store in
  let log = Wlog.create ~replicas:2 ~initial:[] in
  for seq = 1 to writes do
    ignore
      (Wlog.accept log
         (Write.make
            ~id:{ origin = 0; seq }
            ~accept_time:(float_of_int seq)
            ~op:(Op.Add ("x", 1.0))
            ~affects:[ { Write.conit = "c"; nweight = 1.0; oweight = 1.0 } ]))
  done;
  ignore (Wlog.commit_stable log ~cover:[| infinity; infinity |])

let metrics_kernel ~writes () =
  let open Tact_store in
  let ws =
    List.init writes (fun i ->
        Write.make
          ~id:{ origin = i mod 3; seq = (i / 3) + 1 }
          ~accept_time:(float_of_int i)
          ~op:Op.Noop
          ~affects:[ { Write.conit = "c"; nweight = 1.0; oweight = 1.0 } ])
  in
  ignore (Tact_core.Metrics.order_error_lcp ~ecg:ws ~local:ws "c");
  ignore (Tact_core.Metrics.value ws "c")

let sim_kernel ~events () =
  let open Tact_sim in
  let e = Engine.create () in
  for i = 1 to events do
    Engine.schedule e ~delay:(float_of_int (i mod 97)) ignore
  done;
  Engine.run e

let bboard_kernel () =
  ignore
    (Tact_apps.Bboard.run ~seed:3 ~n:3 ~post_rate:2.0 ~read_rate:1.0
       ~duration:5.0 ~ne_bound:4.0 ~antientropy:None ())

let vv_kernel () =
  let open Tact_store in
  let a = Version_vector.create 16 and b = Version_vector.create 16 in
  for i = 0 to 15 do
    Version_vector.set a i (i * 3);
    Version_vector.set b i (48 - (i * 3))
  done;
  for _ = 1 to 1000 do
    let c = Version_vector.copy a in
    Version_vector.merge_into c b;
    ignore (Version_vector.dominates c a)
  done

let budget_kernel () =
  let rates = [| 5.0; 1.0; 0.5; 2.0 |] in
  for self = 1 to 3 do
    for _ = 1 to 1000 do
      ignore
        (Tact_protocols.Budget.share Tact_protocols.Budget.Adaptive ~bound:10.0
           ~n:4 ~self ~receiver:0 ~rates)
    done
  done

let csn_kernel () =
  let open Tact_store in
  let b = Tact_protocols.Csn_buffer.create () in
  for i = 0 to 999 do
    Tact_protocols.Csn_buffer.offer b ~start:i [ { Write.origin = 0; seq = i + 1 } ]
  done;
  ignore (Tact_protocols.Csn_buffer.slice_from b 900)

let micro_tests =
  [
    Test.make ~name:"wlog: 500 accepts + stability commit"
      (Staged.stage (wlog_kernel ~writes:500));
    Test.make ~name:"metrics: LCP order error over 300 writes"
      (Staged.stage (metrics_kernel ~writes:300));
    Test.make ~name:"sim: 10k events through the engine"
      (Staged.stage (sim_kernel ~events:10_000));
    Test.make ~name:"version vectors: 1k merge/dominate (n=16)"
      (Staged.stage vv_kernel);
    Test.make ~name:"budget: 3k adaptive share computations"
      (Staged.stage budget_kernel);
    Test.make ~name:"csn buffer: 1k slice offers"
      (Staged.stage csn_kernel);
    Test.make ~name:"end-to-end: 5s bulletin-board simulation"
      (Staged.stage bboard_kernel);
  ]

let run_micro () =
  Printf.printf "\n%s\nBechamel micro-benchmarks (protocol kernels)\n%s\n"
    (String.make 78 '=') (String.make 78 '=');
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) ~kde:(Some 100) () in
  let test = Test.make_grouped ~name:"tact" ~fmt:"%s %s" micro_tests in
  let raw = Benchmark.all cfg instances test in
  let ols =
    Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let results = List.map (fun instance -> Analyze.all ols instance raw) instances in
  let results = Analyze.merge ols instances results in
  Hashtbl.iter
    (fun measure tbl ->
      Hashtbl.iter
        (fun name result ->
          match Analyze.OLS.estimates result with
          | Some [ est ] ->
            Printf.printf "%-55s %14.1f ns/run (%s)\n" name est measure
          | Some _ | None -> ())
        tbl)
    results

(* ------------------------------------------------------------------ *)
(* Scaling kernels: wall-clock measurements of the hot paths at sizes
   where asymptotic behaviour dominates.  Each kernel asserts its own
   postconditions so that [--smoke] doubles as a correctness guard. *)

open Tact_store

let bench_write ~origin ~seq ~t =
  Write.make ~id:{ origin; seq } ~accept_time:t
    ~op:(Op.Add ("x", 1.0))
    ~affects:[ { Write.conit = "c"; nweight = 1.0; oweight = 1.0 } ]

(* Accept [writes] local writes, then commit them through the primary-CSN
   path in timestamp order, [batch] ids at a time — the shape of a replica
   catching up on a CSN backlog accumulated while commitment lagged. *)
let kernel_accept_commit ~writes ?(batch = 64) () =
  let log = Wlog.create ~replicas:2 ~initial:[] in
  for seq = 1 to writes do
    ignore (Wlog.accept log (bench_write ~origin:0 ~seq ~t:(float_of_int seq)))
  done;
  let committed = ref 0 in
  let pending = ref [] in
  for seq = 1 to writes do
    pending := { Write.origin = 0; seq } :: !pending;
    if seq mod batch = 0 || seq = writes then begin
      committed := !committed + Wlog.commit_ids log (List.rev !pending);
      pending := []
    end
  done;
  assert (!committed = writes);
  assert (Wlog.committed_count log = writes);
  assert (Wlog.tentative log = [])

(* Two origins with interleaved timestamps where one origin's stream is
   delivered [lag] writes behind the other: every second insert lands [lag]
   positions short of the tail of the tentative suffix — the WAN-jitter
   out-of-order arrival pattern. *)
let kernel_insert_storm ~writes ?(lag = 64) () =
  let log = Wlog.create ~replicas:3 ~initial:[] in
  let half = writes / 2 in
  for i = 1 to half + lag do
    if i <= half then
      ignore (Wlog.insert log (bench_write ~origin:0 ~seq:i ~t:(float_of_int (2 * i))));
    if i > lag then begin
      let j = i - lag in
      ignore
        (Wlog.insert log (bench_write ~origin:1 ~seq:j ~t:(float_of_int ((2 * j) - 1))))
    end
  done;
  assert (Wlog.num_known log = 2 * half);
  (* The full image saw every write exactly once despite the reordering. *)
  assert (Db.get_float (Wlog.db log) "x" = float_of_int (2 * half))

(* End-to-end served-access throughput: a 2-replica system under a
   read-mostly open-loop workload with weak bounds, stability commitment and
   fast gossip, so the committed prefix grows throughout the run.  Measures
   the whole serve path: admission, observation capture, commit progress. *)
let kernel_serve ~accesses () =
  let open Tact_sim in
  let open Tact_core in
  let open Tact_replica in
  let topology = Topology.uniform ~n:2 ~latency:0.005 ~bandwidth:1e9 in
  let config =
    {
      Config.default with
      Config.conits = [ Conit.declare "c" ];
      antientropy_period = Some 0.05;
    }
  in
  let sys = System.create ~seed:1 ~jitter:0.0 ~topology ~config () in
  let engine = System.engine sys in
  let served = ref 0 in
  let dt = 0.01 in
  for i = 0 to accesses - 1 do
    let r = System.replica sys (i mod 2) in
    Engine.at engine ~time:(float_of_int i *. dt) (fun () ->
        if i mod 4 = 0 then
          Replica.submit_write r ~deps:[]
            ~affects:[ { Write.conit = "c"; nweight = 1.0; oweight = 1.0 } ]
            ~op:(Op.Add ("x", 1.0))
            ~k:(fun _ -> incr served)
        else
          Replica.submit_read r ~deps:[]
            ~f:(fun db -> Db.get db "x")
            ~k:(fun _ -> incr served))
  done;
  System.run ~until:((float_of_int accesses *. dt) +. 60.0) sys;
  assert (!served = accesses);
  assert (System.converged sys)

(* Anti-entropy delta extraction: one sender's write log holding [writes]
   writes spread over [replicas] origins with interleaved timestamps, queried
   for the deltas owed to peers at several lags.  Runs the k-way-merge
   [Wlog.writes_since] against a faithful re-creation of the seed algorithm
   (per-(origin,seq) Hashtbl probe + List.sort) over the same data, asserting
   identical output, and reports both timings. *)
type ws_result = {
  ws_writes : int;
  ws_replicas : int;
  ws_reps : int;
  ws_reference_s : float;
  ws_merge_s : float;
}

let kernel_writes_since ~writes ~replicas ~reps () =
  let log = Wlog.create ~replicas ~initial:[] in
  for i = 0 to writes - 1 do
    let origin = i mod replicas and seq = (i / replicas) + 1 in
    ignore (Wlog.insert log (bench_write ~origin ~seq ~t:(float_of_int i)))
  done;
  let zero = Version_vector.create replicas in
  let full = Wlog.writes_since log zero in
  let by_id = Hashtbl.create (2 * writes) in
  List.iter (fun (w : Write.t) -> Hashtbl.replace by_id w.id w) full;
  let vec = Wlog.vector log in
  let reference have =
    let out = ref [] in
    for origin = 0 to replicas - 1 do
      for
        seq = Version_vector.get have origin + 1 to Version_vector.get vec origin
      do
        match Hashtbl.find_opt by_id { Write.origin; seq } with
        | Some w -> out := w :: !out
        | None -> assert false
      done
    done;
    List.sort Write.ts_compare !out
  in
  (* Peers at full, half and 10% lag — the shapes anti-entropy actually
     serves: initial sync, a stale peer, steady-state gossip. *)
  let lagged frac =
    let v = Version_vector.create replicas in
    for o = 0 to replicas - 1 do
      let n = Version_vector.get vec o in
      Version_vector.set v o (n - int_of_float (frac *. float_of_int n))
    done;
    v
  in
  let haves = [ zero; lagged 0.5; lagged 0.1 ] in
  List.iter
    (fun have ->
      let a = Wlog.writes_since log have and b = reference have in
      assert (List.length a = List.length b);
      List.iter2 (fun (x : Write.t) (y : Write.t) -> assert (x.id = y.id)) a b)
    haves;
  let time f =
    let t0 = Unix.gettimeofday () in
    for _ = 1 to reps do
      List.iter (fun have -> ignore (f have)) haves
    done;
    Unix.gettimeofday () -. t0
  in
  let ws_reference_s = time reference in
  let ws_merge_s = time (Wlog.writes_since log) in
  { ws_writes = writes; ws_replicas = replicas; ws_reps = reps; ws_reference_s;
    ws_merge_s }

(* Parallel schedule exploration: the checker's weak-converge scenario with
   reductions off (every interleaving executes), explored at each job count.
   The verdict and statistics are identical at any job count — only the wall
   clock may differ, and only on a multicore host. *)
type ps_result = { ps_jobs : int; ps_seconds : float; ps_schedules : int }

let pool_scaling ~jobs_list ~preemptions ~max_schedules () =
  let sc =
    match Tact_check.Scenario.find "weak-converge" with
    | Some s -> s
    | None -> assert false
  in
  let options =
    { Tact_check.Explorer.default_options with
      preemptions; dedup = false; prune = false; max_schedules }
  in
  let results =
    List.map
      (fun jobs ->
        let t0 = Unix.gettimeofday () in
        let o = Tact_check.Explorer.explore ~options ~jobs sc in
        let dt = Unix.gettimeofday () -. t0 in
        (match o.counterexample with
        | None -> ()
        | Some _ -> assert false);
        { ps_jobs = jobs; ps_seconds = dt; ps_schedules = o.stats.schedules })
      jobs_list
  in
  (match results with
  | r0 :: rest ->
    List.iter (fun r -> assert (r.ps_schedules = r0.ps_schedules)) rest
  | [] -> ());
  results

(* Nemesis fault campaign: [runs] seeded fault-injected simulations back to
   back — plan sampling, fault-schedule install, full run, O1-O6 oracle
   sweep.  A clean-seed campaign must pass everywhere; the digest length
   check guards the jobs-invariance witness itself. *)
let kernel_nemesis_campaign ~runs ?(jobs = 1) () =
  let open Tact_nemesis in
  let summary =
    Campaign.run { Campaign.default with Campaign.master_seed = 7; runs; jobs }
  in
  assert (summary.Campaign.completed = runs);
  assert (summary.Campaign.failures = []);
  assert (String.length summary.Campaign.digest = 16)

type kernel_result = {
  kr_name : string;
  kr_param : int;
  kr_seconds : float;
  kr_seed_seconds : float option;  (* measured at the seed commit, same kernel *)
}

(* Seed-implementation timings (list-backed wlog, eager observation capture),
   measured on this machine at the seed commit with this same harness.  Kept
   here so BENCH_PR1.json carries the before/after trajectory. *)
let seed_baseline =
  [
    (("wlog_accept_commit", 10_000), 2.084738);
    (("wlog_accept_commit", 30_000), 26.763079);
    (("wlog_insert_storm", 10_000), 5.140419);
    (("wlog_insert_storm", 30_000), 83.938200);
    (("replica_serve", 10_000), 3.710860);
  ]

let time_kernel (name, param, f) =
  let t0 = Unix.gettimeofday () in
  f ();
  let dt = Unix.gettimeofday () -. t0 in
  { kr_name = name; kr_param = param; kr_seconds = dt;
    kr_seed_seconds = List.assoc_opt (name, param) seed_baseline }

let print_kernel r =
  Printf.printf "%-28s n=%-7d %10.3f s%s\n%!" r.kr_name r.kr_param r.kr_seconds
    (match r.kr_seed_seconds with
    | Some s ->
      Printf.sprintf "   (seed: %.3f s, %.1fx)" s
        (s /. Float.max r.kr_seconds 1e-9)
    | None -> "")

let scaling_kernel_specs =
  [
    ("wlog_accept_commit", 10_000, fun () -> kernel_accept_commit ~writes:10_000 ());
    ("wlog_accept_commit", 30_000, fun () -> kernel_accept_commit ~writes:30_000 ());
    ("wlog_insert_storm", 10_000, fun () -> kernel_insert_storm ~writes:10_000 ());
    ("wlog_insert_storm", 30_000, fun () -> kernel_insert_storm ~writes:30_000 ());
    ("replica_serve", 10_000, fun () -> kernel_serve ~accesses:10_000 ());
    ("nemesis_campaign", 500, fun () -> kernel_nemesis_campaign ~runs:500 ());
  ]

(* With [jobs > 1] the kernels themselves run concurrently on a pool (each
   still times itself with its own wall clock); printing happens after
   collection so lines never interleave. *)
let scaling_kernels ~jobs () =
  if jobs <= 1 then
    List.map
      (fun spec ->
        let r = time_kernel spec in
        print_kernel r;
        r)
      scaling_kernel_specs
  else begin
    let results =
      Tact_util.Pool.with_pool ~jobs (fun pool ->
          Tact_util.Pool.map_list pool time_kernel scaling_kernel_specs)
    in
    List.iter print_kernel results;
    results
  end

(* ------------------------------------------------------------------ *)
(* PR6 kernels: batched delta anti-entropy vs per-write transfers      *)

(* End-to-end traffic under each sync mode, same workload: a tight NE bound
   (every write overruns it, so every write triggers a push to every peer)
   fed by a millisecond-spaced write train.  Per-write mode ships one
   Transfer per trigger; batched mode coalesces everything inside a flush
   window into one frame per peer.  The message/byte counts are the wire
   story; the run must converge in both modes. *)
type sync_traffic = {
  st_messages : int;
  st_bytes : int;
  st_max_frame : int;
  st_batches : int;
  st_seconds : float;
}

let run_sync_traffic ~sync ~writes () =
  let open Tact_sim in
  let open Tact_replica in
  let open Tact_store in
  let topology = Topology.uniform ~n:4 ~latency:0.02 ~bandwidth:1e8 in
  let config =
    {
      Config.default with
      Config.conits = [ Tact_core.Conit.declare ~ne_bound:1.0 "c" ];
      antientropy_period = Some 1.0;
      sync;
      batch_flush = 0.05;
    }
  in
  let sys = System.create ~seed:6 ~jitter:0.02 ~topology ~config () in
  let engine = System.engine sys in
  for k = 1 to writes do
    Engine.schedule engine ~delay:(0.001 *. float_of_int k) (fun () ->
        Replica.submit_write (System.replica sys 0) ~deps:[]
          ~affects:[ { Write.conit = "c"; nweight = 1.0; oweight = 1.0 } ]
          ~op:(Op.Add ("x", 1.0))
          ~k:ignore)
  done;
  let t0 = Unix.gettimeofday () in
  System.run ~until:((0.001 *. float_of_int writes) +. 10.0) sys;
  let dt = Unix.gettimeofday () -. t0 in
  assert (System.converged sys);
  let tr = System.traffic sys in
  {
    st_messages = tr.Net.messages;
    st_bytes = tr.Net.bytes;
    st_max_frame = tr.Net.max_message;
    st_batches = (System.total_stats sys).Replica.batches;
    st_seconds = dt;
  }

(* Encode-path allocations per sync round: the same round payload pushed
   through (a) the naive path — a fresh buffer per write, as the per-write
   mode would serialise — and (b) the reusable [Codec.Frame] arena, one
   buffer for the whole run, one [contents] handoff per round.  Buffer
   allocations are counted directly: one per [write_to_string] call on the
   naive path, [Frame.allocations] (initial + growths, amortised zero) on
   the arena path. *)
type round_alloc = {
  ra_rounds : int;
  ra_per_round : int;
  ra_naive_allocs : int;
  ra_arena_allocs : int;
  ra_naive_seconds : float;
  ra_arena_seconds : float;
}

let kernel_round_alloc ~rounds ~per_round () =
  let open Tact_store in
  let mk seq =
    Write.make
      ~id:{ Write.origin = 0; seq }
      ~accept_time:(0.001 *. float_of_int seq)
      ~op:(Op.Add ("x", 1.0))
      ~affects:[ { Write.conit = "c"; nweight = 1.0; oweight = 1.0 } ]
  in
  let round r = List.init per_round (fun i -> mk ((r * per_round) + i + 1)) in
  let naive_allocs = ref 0 in
  let t0 = Unix.gettimeofday () in
  let sink = ref 0 in
  for r = 0 to rounds - 1 do
    List.iter
      (fun w ->
        incr naive_allocs;
        sink := !sink + String.length (Codec.write_to_string w))
      (round r)
  done;
  let naive_s = Unix.gettimeofday () -. t0 in
  let frame = Codec.Frame.create () in
  let t1 = Unix.gettimeofday () in
  for r = 0 to rounds - 1 do
    Codec.Frame.clear frame;
    List.iter (fun w -> Codec.encode_write frame w) (round r);
    sink := !sink + String.length (Codec.Frame.contents frame)
  done;
  let arena_s = Unix.gettimeofday () -. t1 in
  assert (!sink > 0);
  {
    ra_rounds = rounds;
    ra_per_round = per_round;
    ra_naive_allocs = !naive_allocs;
    ra_arena_allocs = Codec.Frame.allocations frame;
    ra_naive_seconds = naive_s;
    ra_arena_seconds = arena_s;
  }

let pr6_json_report ~cores ~pw ~bt ~ra =
  let b = Buffer.create 2048 in
  Buffer.add_string b
    (Printf.sprintf "{\n  \"cores\": %d,\n  \"ocaml_version\": %S,\n" cores
       Sys.ocaml_version);
  Buffer.add_string b
    (Printf.sprintf
       "  \"kernels\": [\n\
       \    {\"name\": \"sync_traffic_per_write\", \"n\": %d, \"seconds\": \
        %.6f},\n\
       \    {\"name\": \"sync_traffic_batched\", \"n\": %d, \"seconds\": \
        %.6f},\n\
       \    {\"name\": \"round_encode_naive\", \"n\": %d, \"seconds\": %.6f},\n\
       \    {\"name\": \"round_encode_arena\", \"n\": %d, \"seconds\": %.6f}\n\
       \  ],\n"
       pw.st_messages pw.st_seconds bt.st_messages bt.st_seconds
       (ra.ra_rounds * ra.ra_per_round)
       ra.ra_naive_seconds
       (ra.ra_rounds * ra.ra_per_round)
       ra.ra_arena_seconds);
  Buffer.add_string b
    (Printf.sprintf
       "  \"sync_traffic\": {\"per_write_messages\": %d, \"batched_messages\": \
        %d, \"message_reduction\": %.1f, \"per_write_bytes\": %d, \
        \"batched_bytes\": %d, \"byte_reduction\": %.1f, \"batched_frames\": \
        %d, \"batched_max_frame\": %d},\n"
       pw.st_messages bt.st_messages
       (float_of_int pw.st_messages /. float_of_int (max 1 bt.st_messages))
       pw.st_bytes bt.st_bytes
       (float_of_int pw.st_bytes /. float_of_int (max 1 bt.st_bytes))
       bt.st_batches bt.st_max_frame);
  let per_round n = float_of_int n /. float_of_int ra.ra_rounds in
  Buffer.add_string b
    (Printf.sprintf
       "  \"round_alloc\": {\"rounds\": %d, \"writes_per_round\": %d, \
        \"naive_allocs_per_round\": %.2f, \"arena_allocs_per_round\": %.4f, \
        \"alloc_reduction\": %.1f, \"naive_round_ns\": %.0f, \
        \"arena_round_ns\": %.0f}\n}\n"
       ra.ra_rounds ra.ra_per_round
       (per_round ra.ra_naive_allocs)
       (per_round ra.ra_arena_allocs)
       (float_of_int ra.ra_naive_allocs
       /. Float.max (float_of_int ra.ra_arena_allocs) 1e-9)
       (ra.ra_naive_seconds *. 1e9 /. float_of_int ra.ra_rounds)
       (ra.ra_arena_seconds *. 1e9 /. float_of_int ra.ra_rounds));
  Buffer.contents b

let run_pr6 ~path =
  Printf.printf "Batched anti-entropy kernels (PR6)\n%s\n" (String.make 78 '-');
  let pw = run_sync_traffic ~sync:Tact_replica.Config.Per_write ~writes:600 () in
  let bt = run_sync_traffic ~sync:Tact_replica.Config.Batched ~writes:600 () in
  Printf.printf
    "%-28s per-write %7d msgs %9d B   batched %5d msgs %8d B  (%.1fx / %.1fx)\n%!"
    "sync_traffic" pw.st_messages pw.st_bytes bt.st_messages bt.st_bytes
    (float_of_int pw.st_messages /. float_of_int (max 1 bt.st_messages))
    (float_of_int pw.st_bytes /. float_of_int (max 1 bt.st_bytes));
  let ra = kernel_round_alloc ~rounds:2_000 ~per_round:24 () in
  Printf.printf
    "%-28s naive %.1f allocs/round   arena %.4f allocs/round  (%.0fx)\n%!"
    "round_alloc"
    (float_of_int ra.ra_naive_allocs /. float_of_int ra.ra_rounds)
    (float_of_int ra.ra_arena_allocs /. float_of_int ra.ra_rounds)
    (float_of_int ra.ra_naive_allocs
    /. Float.max (float_of_int ra.ra_arena_allocs) 1e-9);
  Printf.printf "%-28s naive %8.0f ns/round   arena %8.0f ns/round\n%!"
    "round_latency"
    (ra.ra_naive_seconds *. 1e9 /. float_of_int ra.ra_rounds)
    (ra.ra_arena_seconds *. 1e9 /. float_of_int ra.ra_rounds);
  let cores = Domain.recommended_domain_count () in
  let oc = open_out path in
  output_string oc (pr6_json_report ~cores ~pw ~bt ~ra);
  close_out oc;
  Printf.printf "wrote %s (cores=%d, ocaml %s)\n" path cores Sys.ocaml_version

(* ------------------------------------------------------------------ *)
(* --compare: per-kernel speedup between two bench json files          *)

(* Minimal scanner for the bench json we emit ourselves: pull each kernel
   object's "name" and "seconds".  Not a general JSON parser — enough for
   files this harness wrote. *)
let parse_kernels path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let src = really_input_string ic len in
  close_in ic;
  let out = ref [] in
  let n = String.length src in
  let find_from sub i =
    let sl = String.length sub in
    let rec go k =
      if k + sl > n then None
      else if String.sub src k sl = sub then Some k
      else go (k + 1)
    in
    go i
  in
  let rec scan i =
    match find_from "\"name\":" i with
    | None -> ()
    | Some k -> (
      match String.index_from_opt src k '"' with
      | None -> ()
      | Some _ -> (
        let q1 = String.index_from src (k + 7) '"' in
        let q2 = String.index_from src (q1 + 1) '"' in
        let name = String.sub src (q1 + 1) (q2 - q1 - 1) in
        match find_from "\"seconds\":" q2 with
        | None -> ()
        | Some s ->
          let v = ref (s + 10) in
          while !v < n && src.[!v] = ' ' do incr v done;
          let e = ref !v in
          while
            !e < n
            && (match src.[!e] with
               | '0' .. '9' | '.' | '-' | 'e' | 'E' | '+' -> true
               | _ -> false)
          do
            incr e
          done;
          out := (name, float_of_string (String.sub src !v (!e - !v))) :: !out;
          scan !e))
  in
  scan 0;
  List.rev !out

let run_compare a b =
  let ka = parse_kernels a and kb = parse_kernels b in
  Printf.printf "%-28s %12s %12s %9s\n" "kernel" (Filename.basename a)
    (Filename.basename b) "speedup";
  Printf.printf "%s\n" (String.make 64 '-');
  List.iter
    (fun (name, sa) ->
      match List.assoc_opt name kb with
      | None -> Printf.printf "%-28s %10.3f s %12s\n" name sa "(missing)"
      | Some sb ->
        Printf.printf "%-28s %10.3f s %10.3f s %8.2fx\n" name sa sb
          (sa /. Float.max sb 1e-9))
    ka;
  List.iter
    (fun (name, sb) ->
      if not (List.mem_assoc name ka) then
        Printf.printf "%-28s %12s %10.3f s\n" name "(missing)" sb)
    kb

let json_report ~cores ~jobs ~kernels ~ws ~ps =
  let buf = Buffer.create 2048 in
  Buffer.add_string buf
    (Printf.sprintf
       "{\n  \"cores\": %d,\n  \"ocaml_version\": %S,\n  \"jobs\": %d,\n\
       \  \"kernels\": [\n"
       cores Sys.ocaml_version jobs);
  List.iteri
    (fun i r ->
      if i > 0 then Buffer.add_string buf ",\n";
      Buffer.add_string buf
        (Printf.sprintf
           "    {\"name\": %S, \"n\": %d, \"seconds\": %.6f, \"per_op_ns\": %.1f"
           r.kr_name r.kr_param r.kr_seconds
           (r.kr_seconds *. 1e9 /. float_of_int r.kr_param));
      (match r.kr_seed_seconds with
      | Some s ->
        Buffer.add_string buf
          (Printf.sprintf ", \"seed_seconds\": %.6f, \"speedup_vs_seed\": %.2f" s
             (s /. Float.max r.kr_seconds 1e-9))
      | None -> ());
      Buffer.add_string buf "}")
    kernels;
  Buffer.add_string buf "\n  ],\n";
  Buffer.add_string buf
    (Printf.sprintf
       "  \"writes_since\": {\"writes\": %d, \"replicas\": %d, \"reps\": %d, \
        \"reference_seconds\": %.6f, \"merge_seconds\": %.6f, \
        \"speedup_vs_reference\": %.2f},\n"
       ws.ws_writes ws.ws_replicas ws.ws_reps ws.ws_reference_s ws.ws_merge_s
       (ws.ws_reference_s /. Float.max ws.ws_merge_s 1e-9));
  Buffer.add_string buf "  \"pool_scaling\": [\n";
  let base =
    match ps with r :: _ -> r.ps_seconds | [] -> 0.0
  in
  List.iteri
    (fun i r ->
      if i > 0 then Buffer.add_string buf ",\n";
      Buffer.add_string buf
        (Printf.sprintf
           "    {\"jobs\": %d, \"seconds\": %.6f, \"schedules\": %d, \
            \"speedup_vs_jobs1\": %.2f}"
           r.ps_jobs r.ps_seconds r.ps_schedules
           (base /. Float.max r.ps_seconds 1e-9)))
    ps;
  Buffer.add_string buf "\n  ]\n}\n";
  Buffer.contents buf

let run_json ~path ~jobs =
  Printf.printf "Scaling kernels (wall clock)\n%s\n" (String.make 78 '-');
  let kernels = scaling_kernels ~jobs () in
  let ws = kernel_writes_since ~writes:30_000 ~replicas:16 ~reps:10 () in
  Printf.printf "%-28s n=%-7d %10.3f s   (seed algorithm: %.3f s, %.1fx)\n%!"
    "wlog_writes_since" ws.ws_writes ws.ws_merge_s ws.ws_reference_s
    (ws.ws_reference_s /. Float.max ws.ws_merge_s 1e-9);
  let ps = pool_scaling ~jobs_list:[ 1; 2; 4 ] ~preemptions:3 ~max_schedules:0 () in
  List.iter
    (fun r ->
      Printf.printf "%-28s jobs=%-4d %10.3f s   (%d schedules)\n%!"
        "explorer_pool_scaling" r.ps_jobs r.ps_seconds r.ps_schedules)
    ps;
  let cores = Domain.recommended_domain_count () in
  let oc = open_out path in
  output_string oc (json_report ~cores ~jobs ~kernels ~ws ~ps);
  close_out oc;
  Printf.printf "wrote %s (cores=%d)\n" path cores

(* Tiny instances of every scaling kernel: a fast CI guard (wired into
   @bench-smoke / runtest) so the benchmark harness cannot bit-rot.  [-j N]
   additionally exercises the pooled paths. *)
let run_smoke ~jobs =
  kernel_accept_commit ~writes:256 ~batch:16 ();
  kernel_insert_storm ~writes:512 ~lag:16 ();
  kernel_serve ~accesses:100 ();
  kernel_nemesis_campaign ~runs:10 ~jobs:(max 1 jobs) ();
  ignore (kernel_writes_since ~writes:2_048 ~replicas:4 ~reps:1 ());
  ignore
    (pool_scaling
       ~jobs_list:[ 1; max 1 jobs ]
       ~preemptions:1 ~max_schedules:50 ());
  ignore (run_sync_traffic ~sync:Tact_replica.Config.Batched ~writes:40 ());
  ignore (kernel_round_alloc ~rounds:20 ~per_round:8 ());
  print_endline "bench smoke ok"

let () =
  let args = Array.to_list Sys.argv |> List.tl in
  let jobs = ref 1 in
  let rec strip_jobs = function
    | ("-j" | "--jobs") :: v :: rest ->
      jobs := int_of_string v;
      strip_jobs rest
    | a :: rest -> a :: strip_jobs rest
    | [] -> []
  in
  let args = strip_jobs args in
  let full = List.mem "--full" args in
  let no_micro = List.mem "--no-micro" args in
  let json = List.mem "--json" args in
  let smoke = List.mem "--smoke" args in
  let pr6 = List.mem "--pr6" args in
  let compare_files =
    match args with
    | "--compare" :: a :: b :: _ -> Some (a, b)
    | _ -> if List.mem "--compare" args then (
        prerr_endline "usage: bench --compare A.json B.json";
        exit 2)
      else None
  in
  let out =
    List.fold_left
      (fun acc a ->
        match String.index_opt a '=' with
        | Some i when String.length a > 6 && String.sub a 0 6 = "--out=" ->
          ignore i;
          String.sub a 6 (String.length a - 6)
        | _ -> acc)
      "BENCH_PR4.json" args
  in
  let only =
    List.filter (fun a -> not (String.length a >= 2 && String.sub a 0 2 = "--")) args
  in
  match compare_files with
  | Some (a, b) -> run_compare a b
  | None ->
  if smoke then run_smoke ~jobs:!jobs
  else if pr6 then
    run_pr6 ~path:(if out = "BENCH_PR4.json" then "BENCH_PR6.json" else out)
  else if json then run_json ~path:out ~jobs:!jobs
  else begin
    run_experiments ~quick:(not full) ~jobs:!jobs ~only;
    if not no_micro then run_micro ()
  end
