(* The benchmark harness.

   Part 1 regenerates every table and figure indexed in DESIGN.md §5 /
   EXPERIMENTS.md (one experiment per paper artifact, printed as tables and
   ASCII plots).  Part 2 runs Bechamel micro-benchmarks of the protocol
   kernels the experiments exercise.

   Part 3 runs the scaling kernels: wall-clock measurements of the hot paths
   (write-log accept/commit, out-of-order insert storms, end-to-end served
   accesses) at sizes where asymptotic costs dominate.  [--json] runs only
   those and writes a machine-readable trajectory file (BENCH_PR1.json) used
   to track the perf of these paths across PRs.

   Usage:
     dune exec bench/main.exe                 # quick experiments + micro
     dune exec bench/main.exe -- --full       # full-length experiments
     dune exec bench/main.exe -- --no-micro   # skip Bechamel
     dune exec bench/main.exe -- E3 E12       # a subset, by id or name
     dune exec bench/main.exe -- --json       # scaling kernels -> BENCH_PR1.json
     dune exec bench/main.exe -- --smoke      # tiny kernel instances (CI guard) *)

open Tact_experiments

let run_experiments ~quick ~only =
  let selected =
    match only with
    | [] -> Registry.all
    | keys ->
      List.filter_map
        (fun k ->
          match Registry.find k with
          | Some e -> Some e
          | None ->
            Printf.printf
              "unknown experiment %S (use an id like E3 or a name like airline)\n" k;
            None)
        keys
  in
  List.iter
    (fun (e : Registry.entry) ->
      Printf.printf "\n%s\n" (String.make 78 '=');
      Printf.printf "%s [%s] — %s\n" e.id e.name e.paper_artifact;
      Printf.printf "%s\n" (String.make 78 '=');
      let t0 = Sys.time () in
      print_string (e.run ~quick ());
      Printf.printf "(%s ran in %.1fs cpu)\n" e.id (Sys.time () -. t0);
      flush stdout)
    selected

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks of the kernels underneath the experiments *)

open Bechamel
open Toolkit

let wlog_kernel ~writes () =
  let open Tact_store in
  let log = Wlog.create ~replicas:2 ~initial:[] in
  for seq = 1 to writes do
    ignore
      (Wlog.accept log
         {
           Write.id = { origin = 0; seq };
           accept_time = float_of_int seq;
           op = Op.Add ("x", 1.0);
           affects = [ { Write.conit = "c"; nweight = 1.0; oweight = 1.0 } ];
         })
  done;
  ignore (Wlog.commit_stable log ~cover:[| infinity; infinity |])

let metrics_kernel ~writes () =
  let open Tact_store in
  let ws =
    List.init writes (fun i ->
        {
          Write.id = { origin = i mod 3; seq = (i / 3) + 1 };
          accept_time = float_of_int i;
          op = Op.Noop;
          affects = [ { Write.conit = "c"; nweight = 1.0; oweight = 1.0 } ];
        })
  in
  ignore (Tact_core.Metrics.order_error_lcp ~ecg:ws ~local:ws "c");
  ignore (Tact_core.Metrics.value ws "c")

let sim_kernel ~events () =
  let open Tact_sim in
  let e = Engine.create () in
  for i = 1 to events do
    Engine.schedule e ~delay:(float_of_int (i mod 97)) ignore
  done;
  Engine.run e

let bboard_kernel () =
  ignore
    (Tact_apps.Bboard.run ~seed:3 ~n:3 ~post_rate:2.0 ~read_rate:1.0
       ~duration:5.0 ~ne_bound:4.0 ~antientropy:None ())

let vv_kernel () =
  let open Tact_store in
  let a = Version_vector.create 16 and b = Version_vector.create 16 in
  for i = 0 to 15 do
    Version_vector.set a i (i * 3);
    Version_vector.set b i (48 - (i * 3))
  done;
  for _ = 1 to 1000 do
    let c = Version_vector.copy a in
    Version_vector.merge_into c b;
    ignore (Version_vector.dominates c a)
  done

let budget_kernel () =
  let rates = [| 5.0; 1.0; 0.5; 2.0 |] in
  for self = 1 to 3 do
    for _ = 1 to 1000 do
      ignore
        (Tact_protocols.Budget.share Tact_protocols.Budget.Adaptive ~bound:10.0
           ~n:4 ~self ~receiver:0 ~rates)
    done
  done

let csn_kernel () =
  let open Tact_store in
  let b = Tact_protocols.Csn_buffer.create () in
  for i = 0 to 999 do
    Tact_protocols.Csn_buffer.offer b ~start:i [ { Write.origin = 0; seq = i + 1 } ]
  done;
  ignore (Tact_protocols.Csn_buffer.slice_from b 900)

let micro_tests =
  [
    Test.make ~name:"wlog: 500 accepts + stability commit"
      (Staged.stage (wlog_kernel ~writes:500));
    Test.make ~name:"metrics: LCP order error over 300 writes"
      (Staged.stage (metrics_kernel ~writes:300));
    Test.make ~name:"sim: 10k events through the engine"
      (Staged.stage (sim_kernel ~events:10_000));
    Test.make ~name:"version vectors: 1k merge/dominate (n=16)"
      (Staged.stage vv_kernel);
    Test.make ~name:"budget: 3k adaptive share computations"
      (Staged.stage budget_kernel);
    Test.make ~name:"csn buffer: 1k slice offers"
      (Staged.stage csn_kernel);
    Test.make ~name:"end-to-end: 5s bulletin-board simulation"
      (Staged.stage bboard_kernel);
  ]

let run_micro () =
  Printf.printf "\n%s\nBechamel micro-benchmarks (protocol kernels)\n%s\n"
    (String.make 78 '=') (String.make 78 '=');
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) ~kde:(Some 100) () in
  let test = Test.make_grouped ~name:"tact" ~fmt:"%s %s" micro_tests in
  let raw = Benchmark.all cfg instances test in
  let ols =
    Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let results = List.map (fun instance -> Analyze.all ols instance raw) instances in
  let results = Analyze.merge ols instances results in
  Hashtbl.iter
    (fun measure tbl ->
      Hashtbl.iter
        (fun name result ->
          match Analyze.OLS.estimates result with
          | Some [ est ] ->
            Printf.printf "%-55s %14.1f ns/run (%s)\n" name est measure
          | Some _ | None -> ())
        tbl)
    results

(* ------------------------------------------------------------------ *)
(* Scaling kernels: wall-clock measurements of the hot paths at sizes
   where asymptotic behaviour dominates.  Each kernel asserts its own
   postconditions so that [--smoke] doubles as a correctness guard. *)

open Tact_store

let bench_write ~origin ~seq ~t =
  {
    Write.id = { origin; seq };
    accept_time = t;
    op = Op.Add ("x", 1.0);
    affects = [ { Write.conit = "c"; nweight = 1.0; oweight = 1.0 } ];
  }

(* Accept [writes] local writes, then commit them through the primary-CSN
   path in timestamp order, [batch] ids at a time — the shape of a replica
   catching up on a CSN backlog accumulated while commitment lagged. *)
let kernel_accept_commit ~writes ?(batch = 64) () =
  let log = Wlog.create ~replicas:2 ~initial:[] in
  for seq = 1 to writes do
    ignore (Wlog.accept log (bench_write ~origin:0 ~seq ~t:(float_of_int seq)))
  done;
  let committed = ref 0 in
  let pending = ref [] in
  for seq = 1 to writes do
    pending := { Write.origin = 0; seq } :: !pending;
    if seq mod batch = 0 || seq = writes then begin
      committed := !committed + Wlog.commit_ids log (List.rev !pending);
      pending := []
    end
  done;
  assert (!committed = writes);
  assert (Wlog.committed_count log = writes);
  assert (Wlog.tentative log = [])

(* Two origins with interleaved timestamps where one origin's stream is
   delivered [lag] writes behind the other: every second insert lands [lag]
   positions short of the tail of the tentative suffix — the WAN-jitter
   out-of-order arrival pattern. *)
let kernel_insert_storm ~writes ?(lag = 64) () =
  let log = Wlog.create ~replicas:3 ~initial:[] in
  let half = writes / 2 in
  for i = 1 to half + lag do
    if i <= half then
      ignore (Wlog.insert log (bench_write ~origin:0 ~seq:i ~t:(float_of_int (2 * i))));
    if i > lag then begin
      let j = i - lag in
      ignore
        (Wlog.insert log (bench_write ~origin:1 ~seq:j ~t:(float_of_int ((2 * j) - 1))))
    end
  done;
  assert (Wlog.num_known log = 2 * half);
  (* The full image saw every write exactly once despite the reordering. *)
  assert (Db.get_float (Wlog.db log) "x" = float_of_int (2 * half))

(* End-to-end served-access throughput: a 2-replica system under a
   read-mostly open-loop workload with weak bounds, stability commitment and
   fast gossip, so the committed prefix grows throughout the run.  Measures
   the whole serve path: admission, observation capture, commit progress. *)
let kernel_serve ~accesses () =
  let open Tact_sim in
  let open Tact_core in
  let open Tact_replica in
  let topology = Topology.uniform ~n:2 ~latency:0.005 ~bandwidth:1e9 in
  let config =
    {
      Config.default with
      Config.conits = [ Conit.declare "c" ];
      antientropy_period = Some 0.05;
    }
  in
  let sys = System.create ~seed:1 ~jitter:0.0 ~topology ~config () in
  let engine = System.engine sys in
  let served = ref 0 in
  let dt = 0.01 in
  for i = 0 to accesses - 1 do
    let r = System.replica sys (i mod 2) in
    Engine.at engine ~time:(float_of_int i *. dt) (fun () ->
        if i mod 4 = 0 then
          Replica.submit_write r ~deps:[]
            ~affects:[ { Write.conit = "c"; nweight = 1.0; oweight = 1.0 } ]
            ~op:(Op.Add ("x", 1.0))
            ~k:(fun _ -> incr served)
        else
          Replica.submit_read r ~deps:[]
            ~f:(fun db -> Db.get db "x")
            ~k:(fun _ -> incr served))
  done;
  System.run ~until:((float_of_int accesses *. dt) +. 60.0) sys;
  assert (!served = accesses);
  assert (System.converged sys)

type kernel_result = {
  kr_name : string;
  kr_param : int;
  kr_seconds : float;
  kr_seed_seconds : float option;  (* measured at the seed commit, same kernel *)
}

(* Seed-implementation timings (list-backed wlog, eager observation capture),
   measured on this machine at the seed commit with this same harness.  Kept
   here so BENCH_PR1.json carries the before/after trajectory. *)
let seed_baseline =
  [
    (("wlog_accept_commit", 10_000), 2.084738);
    (("wlog_accept_commit", 30_000), 26.763079);
    (("wlog_insert_storm", 10_000), 5.140419);
    (("wlog_insert_storm", 30_000), 83.938200);
    (("replica_serve", 10_000), 3.710860);
  ]

let time_kernel ~name ~param f =
  let t0 = Sys.time () in
  f ();
  let dt = Sys.time () -. t0 in
  let seed =
    List.assoc_opt (name, param) seed_baseline
  in
  Printf.printf "%-28s n=%-7d %10.3f s%s\n%!" name param dt
    (match seed with
    | Some s -> Printf.sprintf "   (seed: %.3f s, %.1fx)" s (s /. Float.max dt 1e-9)
    | None -> "");
  { kr_name = name; kr_param = param; kr_seconds = dt; kr_seed_seconds = seed }

let scaling_kernels () =
  [
    time_kernel ~name:"wlog_accept_commit" ~param:10_000
      (kernel_accept_commit ~writes:10_000);
    time_kernel ~name:"wlog_accept_commit" ~param:30_000
      (kernel_accept_commit ~writes:30_000);
    time_kernel ~name:"wlog_insert_storm" ~param:10_000
      (kernel_insert_storm ~writes:10_000);
    time_kernel ~name:"wlog_insert_storm" ~param:30_000
      (kernel_insert_storm ~writes:30_000);
    time_kernel ~name:"replica_serve" ~param:10_000 (kernel_serve ~accesses:10_000);
  ]

let json_of_results results =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "{\n  \"kernels\": [\n";
  List.iteri
    (fun i r ->
      if i > 0 then Buffer.add_string buf ",\n";
      Buffer.add_string buf
        (Printf.sprintf
           "    {\"name\": %S, \"n\": %d, \"seconds\": %.6f, \"per_op_ns\": %.1f"
           r.kr_name r.kr_param r.kr_seconds
           (r.kr_seconds *. 1e9 /. float_of_int r.kr_param));
      (match r.kr_seed_seconds with
      | Some s ->
        Buffer.add_string buf
          (Printf.sprintf ", \"seed_seconds\": %.6f, \"speedup_vs_seed\": %.2f" s
             (s /. Float.max r.kr_seconds 1e-9))
      | None -> ());
      Buffer.add_string buf "}")
    results;
  Buffer.add_string buf "\n  ]\n}\n";
  Buffer.contents buf

let run_json ~path =
  Printf.printf "Scaling kernels (wall clock)\n%s\n" (String.make 78 '-');
  let results = scaling_kernels () in
  let oc = open_out path in
  output_string oc (json_of_results results);
  close_out oc;
  Printf.printf "wrote %s\n" path

(* Tiny instances of every scaling kernel: a fast CI guard (wired into
   @bench-smoke / runtest) so the benchmark harness cannot bit-rot. *)
let run_smoke () =
  kernel_accept_commit ~writes:256 ~batch:16 ();
  kernel_insert_storm ~writes:512 ~lag:16 ();
  kernel_serve ~accesses:100 ();
  print_endline "bench smoke ok"

let () =
  let args = Array.to_list Sys.argv |> List.tl in
  let full = List.mem "--full" args in
  let no_micro = List.mem "--no-micro" args in
  let json = List.mem "--json" args in
  let smoke = List.mem "--smoke" args in
  let out =
    List.fold_left
      (fun acc a ->
        match String.index_opt a '=' with
        | Some i when String.length a > 6 && String.sub a 0 6 = "--out=" ->
          ignore i;
          String.sub a 6 (String.length a - 6)
        | _ -> acc)
      "BENCH_PR1.json" args
  in
  let only =
    List.filter (fun a -> not (String.length a >= 2 && String.sub a 0 2 = "--")) args
  in
  if smoke then run_smoke ()
  else if json then run_json ~path:out
  else begin
    run_experiments ~quick:(not full) ~only;
    if not no_micro then run_micro ()
  end
