(* tact — command-line driver for the TACT reproduction.

   Subcommands:
     list                      enumerate the paper experiments
     exp <id|name> [--full]    run one experiment (E1..E21)
     all [--full]              run every experiment
     bboard / airline / qos    run a sample application with custom knobs *)

open Cmdliner

let full_flag =
  Arg.(value & flag & info [ "full" ] ~doc:"Run at full (paper-scale) duration.")

(* --- list ---------------------------------------------------------- *)

let list_cmd =
  let run () =
    List.iter
      (fun (e : Tact_experiments.Registry.entry) ->
        Printf.printf "%-4s %-14s %s\n" e.id e.name e.paper_artifact)
      Tact_experiments.Registry.all
  in
  Cmd.v (Cmd.info "list" ~doc:"List the paper experiments.")
    Term.(const run $ const ())

(* --- exp ----------------------------------------------------------- *)

let exp_cmd =
  let key =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"EXPERIMENT")
  in
  let run key full =
    match Tact_experiments.Registry.find key with
    | Some e ->
      print_string (e.run ~quick:(not full) ());
      `Ok ()
    | None -> `Error (false, Printf.sprintf "unknown experiment %S (try `tact list`)" key)
  in
  Cmd.v
    (Cmd.info "exp" ~doc:"Run one experiment by id (E3) or name (airline).")
    Term.(ret (const run $ key $ full_flag))

(* --- all ----------------------------------------------------------- *)

let jobs_arg =
  Arg.(
    value & opt int 1
    & info [ "j"; "jobs" ]
        ~doc:
          "Run experiments on $(docv) worker domains. Each experiment is an \
           independent deterministic simulation, so the simulated results \
           are identical at any job count." ~docv:"JOBS")

let all_cmd =
  let run full jobs =
    List.iter
      (fun ((e : Tact_experiments.Registry.entry), report) ->
        Printf.printf "\n=== %s [%s] — %s ===\n" e.id e.name e.paper_artifact;
        print_string report)
      (Tact_experiments.Registry.run_all ~jobs ~quick:(not full) ())
  in
  Cmd.v (Cmd.info "all" ~doc:"Run every experiment.")
    Term.(const run $ full_flag $ jobs_arg)

(* --- sample applications ------------------------------------------- *)

let seed_arg =
  Arg.(value & opt int 1 & info [ "seed" ] ~doc:"PRNG seed (runs are deterministic).")

let n_arg = Arg.(value & opt int 4 & info [ "n" ] ~doc:"Number of replicas.")

let duration_arg =
  Arg.(value & opt float 60.0 & info [ "duration" ] ~doc:"Workload duration (virtual s).")

let bboard_cmd =
  let ne = Arg.(value & opt float infinity & info [ "ne" ] ~doc:"NE bound on AllMsg.") in
  let run seed n duration ne =
    let r = Tact_apps.Bboard.run ~seed ~n ~duration ~ne_bound:ne () in
    Printf.printf
      "posts=%d reads=%d msgs=%d bytes=%d\n\
       read latency: mean %.4fs p99 %.4fs; write latency: mean %.4fs\n\
       observed NE: mean %.2f max %.2f; converged=%b violations=%d\n"
      r.posts r.reads r.messages r.bytes r.mean_read_latency r.p99_read_latency
      r.mean_write_latency r.mean_observed_ne r.max_observed_ne r.converged
      r.violations
  in
  Cmd.v
    (Cmd.info "bboard" ~doc:"Run the replicated bulletin board.")
    Term.(const run $ seed_arg $ n_arg $ duration_arg $ ne)

let airline_cmd =
  let rel = Arg.(value & opt float infinity & info [ "rel-ne" ] ~doc:"Relative NE bound per flight.") in
  let flights = Arg.(value & opt int 4 & info [ "flights" ] ~doc:"Number of flights.") in
  let seats = Arg.(value & opt int 200 & info [ "seats" ] ~doc:"Seats per flight.") in
  let run seed n duration rel flights seats =
    let r = Tact_apps.Airline.run ~seed ~n ~duration ~ne_rel:rel ~flights ~seats () in
    Printf.printf
      "attempts=%d tentative-conflicts=%d final-conflicts=%d conflict-rate=%.4f\n\
       measured relative NE %.4f (paper: conflict rate ~= relative NE)\n\
       msgs=%d bytes=%d write latency %.4fs violations=%d\n"
      r.attempts r.tentative_conflicts r.final_conflicts r.conflict_rate
      r.mean_rel_ne r.messages r.bytes r.mean_write_latency r.violations
  in
  Cmd.v
    (Cmd.info "airline" ~doc:"Run the airline reservation system.")
    Term.(const run $ seed_arg $ n_arg $ duration_arg $ rel $ flights $ seats)

let qos_cmd =
  let ne = Arg.(value & opt float infinity & info [ "ne" ] ~doc:"NE bound per load conit.") in
  let run seed n duration ne =
    let r = Tact_apps.Qos.run ~seed ~n ~duration ~ne_bound:ne () in
    Printf.printf
      "requests=%d misroutes=%d (rate %.4f) imbalance=%.2f load-error=%.2f\n\
       msgs=%d bytes=%d violations=%d\n"
      r.requests r.misroutes r.misroute_rate r.mean_imbalance r.mean_load_error
      r.messages r.bytes r.violations
  in
  Cmd.v
    (Cmd.info "qos" ~doc:"Run the QoS web-server load balancer.")
    Term.(const run $ seed_arg $ n_arg $ duration_arg $ ne)

let vworld_cmd =
  let near = Arg.(value & opt float 1.0 & info [ "near" ] ~doc:"Focus position accuracy.") in
  let far = Arg.(value & opt float 20.0 & info [ "far" ] ~doc:"Peripheral position accuracy.") in
  let run seed n duration near far =
    let r = Tact_apps.Vworld.run ~seed ~n ~duration ~near_bound:near ~far_bound:far () in
    Printf.printf
      "moves=%d
       focus observations:      error %.3f, latency %.4fs (bound %.1f)
       peripheral observations: error %.3f, latency %.4fs (bound %.1f)
       msgs=%d bytes=%d violations=%d
"
      r.moves r.near_err r.near_lat r.near_bound r.far_err r.far_lat r.far_bound
      r.messages r.bytes r.violations
  in
  Cmd.v
    (Cmd.info "vworld" ~doc:"Run the virtual world (focus/nimbus QoS).")
    Term.(const run $ seed_arg $ n_arg $ duration_arg $ near $ far)

let roads_cmd =
  let ne = Arg.(value & opt float infinity & info [ "ne" ] ~doc:"NE bound per road-section conit.") in
  let sections = Arg.(value & opt int 4 & info [ "sections" ] ~doc:"Parallel road sections.") in
  let run seed n duration ne sections =
    let r = Tact_apps.Roads.run ~seed ~n ~duration ~ne_bound:ne ~sections () in
    Printf.printf
      "trips=%d rejected=%d occupancy spread=%.2f worst=%.0f msgs=%d violations=%d
"
      r.trips r.rejected r.mean_spread r.worst_overload r.messages r.violations
  in
  Cmd.v
    (Cmd.info "roads" ~doc:"Run traffic monitoring / road reservation.")
    Term.(const run $ seed_arg $ n_arg $ duration_arg $ ne $ sections)

let trace_cmd =
  let last = Arg.(value & opt int 40 & info [ "last" ] ~doc:"How many trailing events to print.") in
  let run last =
    (* A small traced scenario: three replicas, a strong read across a brief
       partition. *)
    let open Tact_sim in
    let open Tact_store in
    let open Tact_core in
    let open Tact_replica in
    let tr = Tact_util.Trace.create () in
    let config =
      {
        Config.default with
        Config.conits = [ Conit.declare "c" ];
        antientropy_period = Some 1.0;
        trace = Some tr;
      }
    in
    let sys =
      System.create
        ~topology:(Topology.uniform ~n:3 ~latency:0.05 ~bandwidth:1e6)
        ~config ()
    in
    let engine = System.engine sys in
    Engine.schedule engine ~delay:0.2 (fun () ->
        Replica.submit_write (System.replica sys 0) ~deps:[]
          ~affects:[ { Write.conit = "c"; nweight = 1.0; oweight = 1.0 } ]
          ~op:(Op.Add ("x", 1.0)) ~k:ignore);
    Engine.schedule engine ~delay:1.0 (fun () ->
        Net.partition (System.net sys) [ 2 ] [ 0; 1 ]);
    Engine.schedule engine ~delay:1.5 (fun () ->
        Replica.submit_read (System.replica sys 2)
          ~deps:[ ("c", Bounds.strong) ]
          ~f:(fun db -> Db.get db "x")
          ~k:ignore);
    Engine.schedule engine ~delay:4.0 (fun () -> Net.heal (System.net sys));
    System.run ~until:20.0 sys;
    Printf.printf
      "scenario: write at replica 0; replica 2 partitioned at t=1, issues a        strong read at t=1.5, partition heals at t=4.

%s"
      (Tact_util.Trace.render ~last tr)
  in
  Cmd.v
    (Cmd.info "trace" ~doc:"Run a small traced scenario and print the event log.")
    Term.(const run $ last)

let () =
  let info =
    Cmd.info "tact" ~version:"1.0.0"
      ~doc:"Conit-based continuous consistency for wide-area replication (ICDCS 2001 reproduction)."
  in
  exit
    (Cmd.eval
       (Cmd.group info
          [ list_cmd; exp_cmd; all_cmd; bboard_cmd; airline_cmd; qos_cmd;
            vworld_cmd; roads_cmd; trace_cmd ]))
