(* The live replica daemon: one OS process per replica, real sockets, the
   hardened TCP transport, and optional nemesis fault injection at the
   network seam.

   Usage:
     tact_serve --id I --n N --port-base P [OPTIONS]

   Options:
     --client-port-base Q   client protocol port = Q + id (default P + 1000)
     --host H               bind/dial address (default 127.0.0.1)
     --seed S               master prng seed (default 42; jitter stream is
                            derived per process as S + id)
     --faults FILE.json     a nemesis fault schedule (doc/FAULTS.md JSON
                            form); events are interpreted against the
                            fault-injecting transport decorator, so
                            partitions/loss/delay disturb real sockets
     --duration D           drain and exit after D seconds (default: run
                            until SIGTERM/SIGINT)
     --backoff-base B       supervisor backoff base seconds
     --io-timeout T         read/write deadline seconds
     --request-timeout T    client access deadline seconds (default 30)
     --status-every T       print a status line to stderr every T seconds
     --trace                stream the replica's structured protocol trace
                            (accepts, transfers, commits, blocked accesses)
                            to stderr — the live twin of the simulator's
                            post-mortem trace dump

   The process drains cleanly on SIGTERM or SIGINT: the client listener
   closes, parked accesses finish (bounded by the configured drain
   timeout), sockets close, and a final status JSON line goes to stdout.
   Exit status: 0 clean drain, 2 usage error. *)

open Tact_transport
module Config = Tact_replica.Config
module Replica = Tact_replica.Replica
module Fault = Tact_nemesis.Fault
module Json = Tact_check.Json

let usage () =
  prerr_endline
    "usage: tact_serve --id I --n N --port-base P [--client-port-base Q]";
  prerr_endline
    "       [--host H] [--seed S] [--faults FILE.json] [--duration D]";
  prerr_endline
    "       [--backoff-base B] [--io-timeout T] [--request-timeout T]";
  prerr_endline "       [--status-every T]";
  exit 2

type cli = {
  mutable id : int;
  mutable n : int;
  mutable port_base : int;
  mutable client_port_base : int;
  mutable host : string;
  mutable seed : int;
  mutable faults : string option;
  mutable duration : float option;
  mutable backoff_base : float option;
  mutable io_timeout : float option;
  mutable request_timeout : float;
  mutable status_every : float option;
  mutable trace : bool;
}

let parse_cli argv =
  let c =
    {
      id = -1;
      n = 0;
      port_base = 0;
      client_port_base = -1;
      host = "127.0.0.1";
      seed = 42;
      faults = None;
      duration = None;
      backoff_base = None;
      io_timeout = None;
      request_timeout = 30.0;
      status_every = None;
      trace = false;
    }
  in
  let rec go = function
    | [] -> c
    | "--id" :: v :: rest -> c.id <- int_of_string v; go rest
    | "--n" :: v :: rest -> c.n <- int_of_string v; go rest
    | "--port-base" :: v :: rest -> c.port_base <- int_of_string v; go rest
    | "--client-port-base" :: v :: rest ->
      c.client_port_base <- int_of_string v;
      go rest
    | "--host" :: v :: rest -> c.host <- v; go rest
    | "--seed" :: v :: rest -> c.seed <- int_of_string v; go rest
    | "--faults" :: v :: rest -> c.faults <- Some v; go rest
    | "--duration" :: v :: rest -> c.duration <- Some (float_of_string v); go rest
    | "--backoff-base" :: v :: rest ->
      c.backoff_base <- Some (float_of_string v);
      go rest
    | "--io-timeout" :: v :: rest ->
      c.io_timeout <- Some (float_of_string v);
      go rest
    | "--request-timeout" :: v :: rest ->
      c.request_timeout <- float_of_string v;
      go rest
    | "--status-every" :: v :: rest ->
      c.status_every <- Some (float_of_string v);
      go rest
    | "--trace" :: rest -> c.trace <- true; go rest
    | arg :: _ ->
      Printf.eprintf "tact_serve: unknown option %s\n" arg;
      usage ()
  in
  let c = try go argv with Failure _ -> prerr_endline "tact_serve: bad numeric option"; usage () in
  if c.id < 0 || c.n <= 0 || c.id >= c.n || c.port_base <= 0 then usage ();
  if c.client_port_base < 0 then c.client_port_base <- c.port_base + 1000;
  c

(* ------------------------------------------------------------------ *)
(* Fault schedules: interpretation lives in Tact_nemesis.Live, shared   *)
(* with the in-process integration tests.                               *)

let load_schedule ~n path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let s = really_input_string ic len in
  close_in ic;
  match Json.parse s with
  | Error e ->
    Printf.eprintf "tact_serve: %s: bad JSON: %s\n" path e;
    exit 2
  | Ok j -> (
    match Fault.schedule_of_json j with
    | None ->
      Printf.eprintf "tact_serve: %s: not a fault schedule\n" path;
      exit 2
    | Some sched -> (
      match Fault.validate ~n sched with
      | [] -> sched
      | errs ->
        List.iter (fun e -> Printf.eprintf "tact_serve: %s: %s\n" path e) errs;
        exit 2))

(* ------------------------------------------------------------------ *)

let status_json srv =
  let r = Serve.replica srv in
  let st = Tcp.stats (Serve.tcp srv) in
  let fs = Faulty.stats (Serve.faulty srv) in
  Printf.sprintf
    "{\"id\":%d,\"up\":%b,\"log\":%d,\"pending\":%d,\"malformed\":%d,\
     \"peers_up\":%d,\"sent\":%d,\"recv\":%d,\"parked_drops\":%d,\
     \"reconnects\":%d,\"poisoned\":%d,\"f_cut\":%d,\"f_loss\":%d}"
    (Serve.id srv) (Replica.is_up r)
    (Tact_store.Wlog.num_known (Replica.log r))
    (Replica.pending_count r)
    (Replica.malformed_frames r)
    (Serve.peers_up srv) st.Tcp.sent_frames st.Tcp.recv_frames
    st.Tcp.parked_drops st.Tcp.reconnects st.Tcp.poisoned
    fs.Faulty.f_dropped_cut fs.Faulty.f_dropped_loss

let main () =
  let argv = List.tl (Array.to_list Sys.argv) in
  let c = parse_cli argv in
  let addr_of port = Unix.ADDR_INET (Unix.inet_addr_of_string c.host, port) in
  let peer_addrs = Array.init c.n (fun j -> addr_of (c.port_base + j)) in
  let client_addr = addr_of (c.client_port_base + c.id) in
  let config =
    let d = Config.default in
    let tk = d.Config.transport in
    let tk =
      match c.backoff_base with
      | Some b -> { tk with Config.backoff_base = b; backoff_cap = Float.max b tk.Config.backoff_cap }
      | None -> tk
    in
    let tk =
      match c.io_timeout with
      | Some t -> { tk with Config.io_timeout = t }
      | None -> tk
    in
    let trace =
      if c.trace then Some (Tact_util.Trace.create ~capacity:65536 ())
      else d.Config.trace
    in
    { d with Config.transport = tk; trace }
  in
  (match Config.validate ~n:c.n config with
  | Ok () -> ()
  | Error e ->
    Printf.eprintf "tact_serve: config: %s\n" e;
    exit 2);
  let srv =
    Serve.create ~request_timeout:c.request_timeout ~id:c.id ~n:c.n ~peer_addrs
      ~client_addr ~config ~seed:(c.seed + c.id) ()
  in
  let loop = Serve.loop srv in
  if c.trace then
    Tcp.set_trace (Serve.tcp srv) (fun line ->
        Printf.eprintf "[%d] %8.3f tcp: %s\n%!" c.id (Loop.now loop) line);
  let stop_sig _ = Loop.defer loop (fun () -> Serve.request_stop srv) in
  Sys.set_signal Sys.sigterm (Sys.Signal_handle stop_sig);
  Sys.set_signal Sys.sigint (Sys.Signal_handle stop_sig);
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  (match c.faults with
  | Some path ->
    Tact_nemesis.Live.install srv
      ~trace:(fun line -> Printf.eprintf "%s\n%!" line)
      (load_schedule ~n:c.n path)
  | None -> ());
  (match c.duration with
  | Some d -> Loop.schedule loop ~tag:"duration" ~delay:d (fun () -> Serve.request_stop srv)
  | None -> ());
  (match c.status_every with
  | Some period ->
    Loop.every loop ~tag:"status" ~period (fun () ->
        Printf.eprintf "[%d] %s\n%!" c.id (status_json srv);
        not (Serve.stopped srv))
  | None -> ());
  let flush_trace =
    match config.Config.trace with
    | None -> ignore
    | Some tr ->
      let printed = ref 0 in
      let flush () =
        let evs = Tact_util.Trace.events tr in
        List.iteri
          (fun i (e : Tact_util.Trace.event) ->
            if i >= !printed then
              Printf.eprintf "[%d] %8.3f %-9s %s\n%!" c.id e.Tact_util.Trace.time
                e.Tact_util.Trace.kind e.Tact_util.Trace.detail)
          evs;
        printed := List.length evs
      in
      Loop.every loop ~tag:"trace" ~period:0.2 (fun () ->
          flush ();
          not (Serve.stopped srv));
      flush
  in
  Serve.start srv;
  Printf.eprintf "[%d] tact_serve: listening peers=%d client=%d\n%!" c.id
    (c.port_base + c.id)
    (c.client_port_base + c.id);
  Serve.run srv;
  flush_trace ();
  print_endline (status_json srv)

let () =
  try main () with
  | Unix.Unix_error (e, fn, arg) ->
    Printf.eprintf "tact_serve: %s(%s): %s\n" fn arg (Unix.error_message e);
    exit 1
