(* Systematic interleaving checker over the named lib/check scenarios.

   Usage:
     tact_check list
     tact_check run SCENARIO [OPTIONS]
     tact_check all [OPTIONS]
     tact_check replay TRACE.json

   Options:
     --smoke            tight budgets for CI (defaults tuned to finish fast)
     --depth N          branch only at the first N choice-phase steps
     --preemptions N    max deviations per schedule
     --window SECONDS   deviate only to events this close to the earliest
     --max-schedules N  execution budget per scenario (0 = unlimited)
     --no-prune         disable commute-forward pruning
     --no-dedup         disable fingerprint deduplication
     --trace-dir DIR    where to write counterexample traces (default ".")
     -j, --jobs N       explore with N worker domains (default 1); the
                        verdict, statistics and trace are identical to -j 1

   Exit status: 0 all explored scenarios pass (or a replay reproduces its
   trace exactly), 1 a violation was found (trace written) or a replay did
   not reproduce, 2 usage error. *)

open Tact_check

let usage () =
  prerr_endline
    "usage: tact_check list | run SCENARIO [opts] | all [opts] | replay TRACE";
  prerr_endline "       opts: --smoke --depth N --preemptions N --window W";
  prerr_endline
    "             --max-schedules N --no-prune --no-dedup --trace-dir DIR";
  prerr_endline "             -j N | --jobs N";
  exit 2

type cli = {
  mutable options : Explorer.options;
  mutable trace_dir : string;
  mutable jobs : int;
}

let parse_options args =
  let cli = { options = Explorer.default_options; trace_dir = "."; jobs = 1 } in
  let rec go = function
    | [] -> cli
    | "--smoke" :: rest ->
      cli.options <- Explorer.smoke_options;
      go rest
    | "--depth" :: v :: rest ->
      cli.options <- { cli.options with Explorer.depth = int_of_string v };
      go rest
    | "--preemptions" :: v :: rest ->
      cli.options <- { cli.options with Explorer.preemptions = int_of_string v };
      go rest
    | "--window" :: v :: rest ->
      cli.options <- { cli.options with Explorer.window = float_of_string v };
      go rest
    | "--max-schedules" :: v :: rest ->
      cli.options <- { cli.options with Explorer.max_schedules = int_of_string v };
      go rest
    | "--no-prune" :: rest ->
      cli.options <- { cli.options with Explorer.prune = false };
      go rest
    | "--no-dedup" :: rest ->
      cli.options <- { cli.options with Explorer.dedup = false };
      go rest
    | "--trace-dir" :: v :: rest ->
      cli.trace_dir <- v;
      go rest
    | ("-j" | "--jobs") :: v :: rest ->
      cli.jobs <- int_of_string v;
      go rest
    | arg :: _ ->
      Printf.eprintf "tact_check: unknown option %s\n" arg;
      usage ()
  in
  try go args
  with Failure _ ->
    prerr_endline "tact_check: bad numeric option value";
    usage ()

let trace_path cli (sc : Scenario.t) =
  Filename.concat cli.trace_dir
    (Printf.sprintf "tact_check.%s.trace.json" sc.Scenario.name)

let check_one cli (sc : Scenario.t) =
  (* Wall clock, not [Sys.time]: CPU time sums over worker domains. *)
  let start = Unix.gettimeofday () in
  let outcome = Explorer.explore ~options:cli.options ~jobs:cli.jobs sc in
  let elapsed = Unix.gettimeofday () -. start in
  let s = outcome.Explorer.stats in
  match outcome.Explorer.counterexample with
  | None ->
    Printf.printf
      "%-16s %s: %d schedules, %d states deduped, %d pruned, max %d steps, 0 \
       violations (%.1fs)\n"
      sc.Scenario.name
      (if s.Explorer.exhausted then "exhausted" else "budget-capped")
      s.Explorer.schedules s.Explorer.deduped s.Explorer.pruned
      s.Explorer.max_steps elapsed;
    true
  | Some cx ->
    let path = trace_path cli sc in
    Counterexample.save ~path cx;
    Printf.printf
      "%-16s VIOLATION after %d schedules (%d-deviation counterexample, \
       minimized):\n"
      sc.Scenario.name s.Explorer.schedules
      (List.length cx.Counterexample.deviations);
    List.iter (Printf.printf "  %s\n") cx.Counterexample.violations;
    Printf.printf "  trace written to %s (replay with: tact_check replay %s)\n"
      path path;
    false

let run_scenarios cli scs =
  let ok = List.for_all (fun sc -> check_one cli sc) scs in
  if ok then 0 else 1

let replay path =
  match Counterexample.load ~path with
  | Error m ->
    Printf.eprintf "tact_check: cannot load %s: %s\n" path m;
    exit 2
  | Ok cx -> (
    match Scenario.find cx.Counterexample.scenario with
    | None ->
      Printf.eprintf "tact_check: trace names unknown scenario %s\n"
        cx.Counterexample.scenario;
      exit 2
    | Some sc ->
      let v = Counterexample.replay ~sanitize:true sc cx in
      Printf.printf "replaying %s on %s: %d deviations, %d steps\n" path
        sc.Scenario.name
        (List.length cx.Counterexample.deviations)
        (Array.length v.Counterexample.result.Runner.steps);
      List.iter
        (Printf.printf "  %s\n")
        v.Counterexample.result.Runner.violations;
      let fp_ok = v.Counterexample.fingerprint_match in
      let viol_ok =
        v.Counterexample.reproduced = (cx.Counterexample.violations <> [])
      in
      Printf.printf "  violations reproduced: %b, final fingerprint match: %b\n"
        v.Counterexample.reproduced fp_ok;
      if fp_ok && viol_ok then 0 else 1)

let () =
  match Array.to_list Sys.argv with
  | _ :: "list" :: _ ->
    List.iter
      (fun (sc : Scenario.t) ->
        Printf.printf "%-16s %d replicas, horizon %gs — %s\n" sc.Scenario.name
          sc.Scenario.replicas sc.Scenario.horizon sc.Scenario.summary)
      Scenario.all;
    exit 0
  | _ :: "run" :: name :: args -> (
    match Scenario.find name with
    | None ->
      Printf.eprintf "tact_check: unknown scenario %s (try: tact_check list)\n"
        name;
      exit 2
    | Some sc -> exit (run_scenarios (parse_options args) [ sc ]))
  | _ :: "all" :: args ->
    exit (run_scenarios (parse_options args) Scenario.all)
  | _ :: "replay" :: path :: _ -> exit (replay path)
  | _ -> usage ()
