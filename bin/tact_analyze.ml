(* tact_analyze — the AST-based static analyzer.

   Parses the tree with compiler-libs, builds per-module summaries and the
   cross-module reference graph, then runs the layering, domain-race and
   determinism passes (see doc/ANALYSIS.md for the SA0xx catalogue).

   Usage:
     tact_analyze [--rules FILE] [--baseline FILE] [--update-baseline]
                  [--json] [--sarif FILE] [--graph] [DIR ...]

   Defaults: DIRs = lib bin bench, rules = analysis/layering.rules,
   baseline = analysis/tact_analyze.baseline.  Exit 1 when any finding is
   not covered by the baseline. *)

open Tact_staticcheck

let usage () =
  prerr_endline
    "usage: tact_analyze [--rules FILE] [--baseline FILE] \
     [--update-baseline] [--json] [--sarif FILE] [--graph] [DIR ...]";
  exit 2

type opts = {
  mutable rules_file : string;
  mutable baseline_file : string;
  mutable update_baseline : bool;
  mutable json : bool;
  mutable sarif : string option;
  mutable graph_dump : bool;
  mutable dirs : string list;
}

let parse_args () =
  let o =
    { rules_file = "analysis/layering.rules";
      baseline_file = "analysis/tact_analyze.baseline";
      update_baseline = false;
      json = false;
      sarif = None;
      graph_dump = false;
      dirs = [] }
  in
  let rec go = function
    | [] -> ()
    | "--rules" :: f :: rest -> o.rules_file <- f; go rest
    | "--baseline" :: f :: rest -> o.baseline_file <- f; go rest
    | "--update-baseline" :: rest -> o.update_baseline <- true; go rest
    | "--json" :: rest -> o.json <- true; go rest
    | "--sarif" :: f :: rest -> o.sarif <- Some f; go rest
    | "--graph" :: rest -> o.graph_dump <- true; go rest
    | ("--rules" | "--baseline" | "--sarif") :: [] -> usage ()
    | a :: _ when String.length a > 0 && a.[0] = '-' -> usage ()
    | d :: rest -> o.dirs <- d :: o.dirs; go rest
  in
  go (Array.to_list Sys.argv |> List.tl);
  if o.dirs = [] then o.dirs <- [ "lib"; "bin"; "bench" ]
  else o.dirs <- List.rev o.dirs;
  o

let syntax_findings (loaded : Loader.t) =
  List.filter_map
    (fun (s : Loader.source) ->
      match s.s_error with
      | None -> None
      | Some (line, col, msg) ->
        let loc =
          let pos =
            { Lexing.pos_fname = s.s_path; pos_lnum = line; pos_bol = 0;
              pos_cnum = col }
          in
          { Location.loc_start = pos; loc_end = pos; loc_ghost = false }
        in
        Some
          (Report.finding ~rule_id:"SA001" ~path:s.s_path ~loc
             ~context:"syntax" msg))
    loaded.sources

let dump_graph graph =
  List.iter
    (fun (e : Graph.edge) ->
      Printf.printf "%s/%s -> %s/%s (%s:%d in %s)\n" e.e_src.n_dir
        e.e_src.n_mod e.e_dst.n_dir e.e_dst.n_mod
        e.e_loc.Location.loc_start.Lexing.pos_fname
        e.e_loc.Location.loc_start.Lexing.pos_lnum
        (if String.equal e.e_def "" then "(toplevel)" else e.e_def))
    (Graph.module_edges graph)

let () =
  let o = parse_args () in
  let loaded = Loader.load_dirs o.dirs in
  let sums =
    List.map (Summary.of_source loaded) loaded.Loader.sources
  in
  let graph = Graph.build sums in
  if o.graph_dump then begin
    dump_graph graph;
    exit 0
  end;
  let layering =
    if Sys.file_exists o.rules_file then
      match Layering.load_rules o.rules_file with
      | Ok rules -> Layering.run rules graph
      | Error e ->
        Printf.eprintf "tact_analyze: %s\n" e;
        exit 2
    else begin
      Printf.eprintf
        "tact_analyze: note: %s not found, skipping layering pass\n"
        o.rules_file;
      []
    end
  in
  let findings =
    Report.dedup
      (syntax_findings loaded @ layering @ Races.run graph
      @ Determinism.run sums)
  in
  if o.update_baseline then begin
    Baseline.save o.baseline_file findings;
    Printf.printf "tact_analyze: wrote %d baseline entr%s to %s\n"
      (List.length findings)
      (if List.length findings = 1 then "y" else "ies")
      o.baseline_file;
    exit 0
  end;
  let baseline = Baseline.load o.baseline_file in
  let baselined = Baseline.mem baseline in
  let fresh = List.filter (fun f -> not (baselined f)) findings in
  (match o.sarif with
  | Some path ->
    let oc = open_out_bin path in
    output_string oc (Report.sarif_of ~baselined findings);
    close_out oc
  | None -> ());
  if o.json then print_string (Report.json_of ~baselined findings)
  else begin
    List.iter (fun f -> print_endline (Report.to_text f)) fresh;
    Printf.printf
      "tact_analyze: %d file(s), %d finding(s), %d baselined, %d new\n"
      (List.length loaded.Loader.sources)
      (List.length findings)
      (List.length findings - List.length fresh)
      (List.length fresh)
  end;
  if fresh <> [] then exit 1
