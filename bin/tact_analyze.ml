(* tact_analyze — the AST-based static analyzer.

   Parses the tree with compiler-libs, builds per-module summaries, the
   cross-module reference graph and the value-level call graph, then runs
   the layering, domain-race, determinism, interface and interprocedural
   effect passes (see doc/ANALYSIS.md for the SA0xx catalogue).

   Usage:
     tact_analyze [--rules FILE] [--effect-rules FILE] [--baseline FILE]
                  [--update-baseline] [--json] [--sarif FILE] [--graph]
                  [--dot FILE] [--effects] [--why SYMBOL] [DIR ...]

   Defaults: DIRs = lib bin bench, rules = analysis/layering.rules,
   effect rules = analysis/effects.rules, baseline =
   analysis/tact_analyze.baseline.  test/ and examples/ are always loaded
   as reference-only sources: their references keep exported API alive for
   SA004, but no findings are reported on them.  Exit 1 when any finding
   is not covered by the baseline. *)

open Tact_staticcheck

let usage () =
  prerr_endline
    "usage: tact_analyze [--rules FILE] [--effect-rules FILE] \
     [--baseline FILE] [--update-baseline] [--json] [--sarif FILE] \
     [--graph] [--dot FILE] [--effects] [--why SYMBOL] [DIR ...]";
  exit 2

type opts = {
  mutable rules_file : string;
  mutable effect_rules_file : string;
  mutable baseline_file : string;
  mutable update_baseline : bool;
  mutable json : bool;
  mutable sarif : string option;
  mutable graph_dump : bool;
  mutable dot : string option;
  mutable effects_only : bool;
  mutable why : string option;
  mutable dirs : string list;
}

let parse_args () =
  let o =
    { rules_file = "analysis/layering.rules";
      effect_rules_file = "analysis/effects.rules";
      baseline_file = "analysis/tact_analyze.baseline";
      update_baseline = false;
      json = false;
      sarif = None;
      graph_dump = false;
      dot = None;
      effects_only = false;
      why = None;
      dirs = [] }
  in
  let rec go = function
    | [] -> ()
    | "--rules" :: f :: rest -> o.rules_file <- f; go rest
    | "--effect-rules" :: f :: rest -> o.effect_rules_file <- f; go rest
    | "--baseline" :: f :: rest -> o.baseline_file <- f; go rest
    | "--update-baseline" :: rest -> o.update_baseline <- true; go rest
    | "--json" :: rest -> o.json <- true; go rest
    | "--sarif" :: f :: rest -> o.sarif <- Some f; go rest
    | "--graph" :: rest -> o.graph_dump <- true; go rest
    | "--dot" :: f :: rest -> o.dot <- Some f; go rest
    | "--effects" :: rest -> o.effects_only <- true; go rest
    | "--why" :: s :: rest -> o.why <- Some s; go rest
    | ("--rules" | "--effect-rules" | "--baseline" | "--sarif" | "--dot"
      | "--why")
      :: [] ->
      usage ()
    | a :: _ when String.length a > 0 && a.[0] = '-' -> usage ()
    | d :: rest -> o.dirs <- d :: o.dirs; go rest
  in
  go (Array.to_list Sys.argv |> List.tl);
  if o.dirs = [] then o.dirs <- [ "lib"; "bin"; "bench" ]
  else o.dirs <- List.rev o.dirs;
  o

let ref_dirs = [ "test"; "examples" ]

let syntax_findings (sources : Loader.source list) =
  List.filter_map
    (fun (s : Loader.source) ->
      match s.s_error with
      | None -> None
      | Some (line, col, msg) ->
        let loc =
          let pos =
            { Lexing.pos_fname = s.s_path; pos_lnum = line; pos_bol = 0;
              pos_cnum = col }
          in
          { Location.loc_start = pos; loc_end = pos; loc_ghost = false }
        in
        Some
          (Report.finding ~rule_id:"SA001" ~path:s.s_path ~loc
             ~context:"syntax" msg))
    sources

let dump_graph graph =
  List.iter
    (fun (e : Graph.edge) ->
      Printf.printf "%s/%s -> %s/%s (%s:%d in %s)\n" e.e_src.n_dir
        e.e_src.n_mod e.e_dst.n_dir e.e_dst.n_mod
        e.e_loc.Location.loc_start.Lexing.pos_fname
        e.e_loc.Location.loc_start.Lexing.pos_lnum
        (if String.equal e.e_def "" then "(toplevel)" else e.e_def))
    (Graph.module_edges graph)

let read_file path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let text = really_input_string ic len in
  close_in ic;
  text

let () =
  let o = parse_args () in
  let loaded = Loader.load_dirs o.dirs in
  let sums = List.map (Summary.of_source loaded) loaded.Loader.sources in
  let graph = Graph.build sums in
  if o.graph_dump then begin
    dump_graph graph;
    exit 0
  end;
  (* The effect rules feed the fixpoint; without the file the effect
     passes are skipped (--why/--dot still work on the bare graph). *)
  let effect_rules, have_effect_rules =
    if Sys.file_exists o.effect_rules_file then
      match Effects.parse_rules (read_file o.effect_rules_file) with
      | Ok r -> (r, true)
      | Error e ->
        Printf.eprintf "tact_analyze: %s: %s\n" o.effect_rules_file e;
        exit 2
    else begin
      Printf.eprintf
        "tact_analyze: note: %s not found, skipping effect passes\n"
        o.effect_rules_file;
      (Effects.empty_rules, false)
    end
  in
  let cg = Callgraph.build graph in
  let eff = Effects.infer effect_rules graph cg in
  (match o.dot with
  | Some path ->
    let oc = open_out_bin path in
    output_string oc (Callgraph.dot cg);
    close_out oc
  | None -> ());
  (match o.why with
  | Some sym ->
    List.iter print_endline (Effects.why eff sym);
    exit 0
  | None -> ());
  let effect_findings = if have_effect_rules then Effects.run eff else [] in
  let findings =
    if o.effects_only then Report.dedup effect_findings
    else begin
      let layering =
        if Sys.file_exists o.rules_file then
          match Layering.load_rules o.rules_file with
          | Ok rules -> Layering.run rules graph
          | Error e ->
            Printf.eprintf "tact_analyze: %s\n" e;
            exit 2
        else begin
          Printf.eprintf
            "tact_analyze: note: %s not found, skipping layering pass\n"
            o.rules_file;
          []
        end
      in
      (* test/ and examples/ join the universe for SA004 only: their
         references count, their findings do not. *)
      let ref_loaded = Loader.load_dirs ref_dirs in
      let all =
        Loader.of_sources (loaded.Loader.sources @ ref_loaded.Loader.sources)
      in
      let sums_all = List.map (Summary.of_source all) all.Loader.sources in
      let graph_all = Graph.build sums_all in
      Report.dedup
        (syntax_findings loaded.Loader.sources
        @ layering @ Races.run graph @ Determinism.run sums
        @ Interfaces.run ~analyzed:o.dirs graph_all
        @ effect_findings)
    end
  in
  let old_baseline = Baseline.load o.baseline_file in
  let stale = Baseline.stale old_baseline findings in
  if o.update_baseline then begin
    Baseline.save o.baseline_file findings;
    Printf.printf "tact_analyze: wrote %d baseline entr%s to %s%s\n"
      (List.length findings)
      (if List.length findings = 1 then "y" else "ies")
      o.baseline_file
      (match List.length stale with
      | 0 -> ""
      | n -> Printf.sprintf " (pruned %d stale)" n);
    exit 0
  end;
  (* A stale key matches nothing: the finding it excused is gone, so the
     entry only masks future regressions that happen to collide with it. *)
  if (not o.effects_only) && stale <> [] then begin
    Printf.eprintf
      "tact_analyze: warning: %d stale baseline key(s) in %s (prune with \
       --update-baseline):\n"
      (List.length stale) o.baseline_file;
    List.iter (fun k -> Printf.eprintf "  %s\n" k) stale
  end;
  let baselined = Baseline.mem old_baseline in
  let fresh = List.filter (fun f -> not (baselined f)) findings in
  (match o.sarif with
  | Some path ->
    let oc = open_out_bin path in
    output_string oc (Report.sarif_of ~baselined findings);
    close_out oc
  | None -> ());
  if o.json then print_string (Report.json_of ~baselined findings)
  else begin
    List.iter (fun f -> print_endline (Report.to_text f)) fresh;
    Printf.printf
      "tact_analyze: %d file(s), %d finding(s), %d baselined, %d new\n"
      (List.length loaded.Loader.sources)
      (List.length findings)
      (List.length findings - List.length fresh)
      (List.length fresh)
  end;
  if fresh <> [] then exit 1
