(* Source lint for the tact tree — the fast textual pre-pass.

   A small textual pass over [.ml] files that flags patterns this codebase
   forbids on its deterministic paths: unspecified Hashtbl iteration order,
   naked [failwith], raw domain primitives (Domain/Mutex/Condition/Atomic)
   outside the lib/util concurrency layer, and per-call buffer allocation on
   the wire hot paths.  Comments and string literals are stripped before
   matching (see lib/staticcheck/strip.ml), so prose never trips a rule.

   The scope-aware rules this linter used to carry — polymorphic compare,
   wall-clock reads, global Random state, Obj.magic, exact float equality,
   module-level mutable state — moved to the AST-based analyzer
   [bin/tact_analyze.ml] (rules SA030/SA040-SA044), which resolves
   identifiers instead of pattern-matching lines.  Run both: this pass is
   milliseconds and catches what a parse never sees (unparsable files aside,
   Hashtbl order and failwith are lexical properties).

   A finding is suppressed by a [(* lint: allow <rule> -- why *)] comment on
   the same line or the line directly above it, or for a whole file by
   [(* lint: allow-file <rule> -- why *)] (used by lib/util/pool.ml and
   sync.ml, which are the sanctioned home of the domain primitives).  Exit
   status 1 when any finding survives.  Usage: [tact_lint [DIR ...]]
   (default: [lib]). *)

type rule = { rule_name : string; explain : string }

let rules =
  [
    { rule_name = "hashtbl-iter";
      explain =
        "Hashtbl.iter order is unspecified; sort first, or annotate if \
         order-independent" };
    { rule_name = "hashtbl-fold";
      explain =
        "Hashtbl.fold order is unspecified; sort first, or annotate if \
         commutative" };
    { rule_name = "naked-failwith";
      explain = "failwith raises anonymous Failure; use invalid_arg or a typed \
                 exception" };
    { rule_name = "domain-safety";
      explain =
        "raw Domain/Mutex/Condition/Atomic use belongs in lib/util (Pool, \
         Sync); route concurrency through those wrappers so locking \
         discipline lives in one place" };
    { rule_name = "alloc-hot-path";
      explain =
        "per-call buffer allocation on a hot path; encode through the \
         reusable Codec.Frame arena (one buffer per replica, grown in \
         place), or annotate a cold path" };
  ]

type finding = { file : string; line : int; frule : rule; snippet : string }

(* --- source preparation ------------------------------------------------ *)

let is_ident_char c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
  || c = '_' || c = '\''

(* Blank out comments and string/char literals, preserving line structure;
   shared with tact_analyze's pre-pass. *)
let strip = Tact_staticcheck.Strip.strip

(* --- allow annotations ------------------------------------------------- *)

(* [(* lint: allow rule-a, rule-b -- rationale *)] suppresses those rules on
   the comment's lines and the line after it ends, so a multi-line rationale
   still covers the annotated code.  [(* lint: allow-file rule -- why *)]
   suppresses the rules for the whole file — for the rare module that is
   itself the sanctioned home of a pattern (e.g. [domain-safety] in the
   lib/util concurrency layer). *)
let mentions spec rule_name =
  let rlen = String.length rule_name in
  let found = ref false in
  (* substring match is enough: rule names never overlap *)
  for k = 0 to String.length spec - rlen do
    if String.sub spec k rlen = rule_name then found := true
  done;
  !found

let allowances comments =
  let tbl = Hashtbl.create 8 in
  let file_wide = Hashtbl.create 4 in
  List.iter
    (fun (cline, text) ->
      match String.index_opt text ':' with
      | Some colon
        when String.trim (String.sub text 0 colon) = "lint" -> (
        let rest = String.sub text (colon + 1) (String.length text - colon - 1) in
        let rest = String.trim rest in
        match String.index_opt rest ' ' with
        | Some sp when String.sub rest 0 sp = "allow-file" ->
          let spec = String.sub rest sp (String.length rest - sp) in
          List.iter
            (fun { rule_name; _ } ->
              if mentions spec rule_name then
                Hashtbl.replace file_wide rule_name ())
            rules
        | Some sp when String.sub rest 0 sp = "allow" ->
          let spec = String.sub rest sp (String.length rest - sp) in
          List.iter
            (fun { rule_name; _ } ->
              if mentions spec rule_name then begin
                let last = ref cline in
                String.iter (fun c -> if c = '\n' then incr last) text;
                for l = cline to !last + 1 do
                  Hashtbl.replace tbl (l, rule_name) ()
                done
              end)
            rules
        | _ -> ())
      | _ -> ())
    comments;
  (tbl, file_wide)

(* --- matching ---------------------------------------------------------- *)

let rule name = List.find (fun r -> r.rule_name = name) rules

(* Occurrences of [word] in [line] as a standalone identifier (not a prefix,
   suffix or field access). *)
let has_token ?(qualified = false) line word =
  let n = String.length line and wlen = String.length word in
  let found = ref false in
  for k = 0 to n - wlen do
    if String.sub line k wlen = word then begin
      let pre_ok =
        k = 0
        || (not (is_ident_char line.[k - 1]))
           && (qualified || line.[k - 1] <> '.')
      in
      let post_ok = k + wlen >= n || not (is_ident_char line.[k + wlen]) in
      if pre_ok && post_ok then found := true
    end
  done;
  !found

(* Substring directory test so both relative and absolute roots scope
   correctly: does [dir ^ "/"] occur in [path]? *)
let in_dir path dir =
  let d = dir ^ "/" in
  let dl = String.length d and n = String.length path in
  let found = ref false in
  for k = 0 to n - dl do
    if String.equal (String.sub path k dl) d then found := true
  done;
  !found

let check_line ~allochot line =
  let hits = ref [] in
  let add r = hits := rule r :: !hits in
  (* Wire hot paths (store codecs, simulated network): every message send
     runs these, so per-call [Bytes.create]/[Buffer.create] is churn the
     Frame arena exists to eliminate. *)
  if
    allochot
    && (has_token ~qualified:true line "Bytes.create"
       || has_token ~qualified:true line "Buffer.create")
  then add "alloc-hot-path";
  if has_token ~qualified:true line "Hashtbl.iter" then add "hashtbl-iter";
  if has_token ~qualified:true line "Hashtbl.fold" then add "hashtbl-fold";
  if has_token line "failwith" then add "naked-failwith";
  (* Qualified uses of the domain-parallelism modules ([Domain.spawn],
     [Mutex.lock], [Condition.wait], [Atomic.make], ...).  Matching on the
     module path catches every entry point without enumerating them. *)
  (let hit = ref false in
   List.iter
     (fun w ->
       let n = String.length line and wl = String.length w in
       for k = 0 to n - wl do
         if
           String.sub line k wl = w
           && (k = 0 || (line.[k - 1] <> '.' && not (is_ident_char line.[k - 1])))
         then hit := true
       done)
     [ "Domain."; "Mutex."; "Condition."; "Atomic." ];
   if !hit then add "domain-safety");
  !hits

let lint_file findings path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let src = really_input_string ic len in
  close_in ic;
  let stripped, comments = strip src in
  let allowed, file_allowed = allowances comments in
  let lines = String.split_on_char '\n' stripped in
  let allochot = in_dir path "lib/store" || in_dir path "lib/sim" in
  List.iteri
    (fun idx line ->
      let lno = idx + 1 in
      List.iter
        (fun r ->
          if
            not
              (Hashtbl.mem file_allowed r.rule_name
              || Hashtbl.mem allowed (lno, r.rule_name))
          then
            findings :=
              { file = path; line = lno; frule = r; snippet = String.trim line }
              :: !findings)
        (check_line ~allochot line))
    lines

let rec walk findings path =
  if Sys.is_directory path then
    Array.iter
      (fun entry -> walk findings (Filename.concat path entry))
      (let entries = Sys.readdir path in
       Array.sort String.compare entries;
       entries)
  else if Filename.check_suffix path ".ml" then lint_file findings path

let () =
  let roots =
    match List.tl (Array.to_list Sys.argv) with [] -> [ "lib" ] | l -> l
  in
  let findings = ref [] in
  List.iter (walk findings) roots;
  let findings =
    List.sort
      (fun a b ->
        match String.compare a.file b.file with
        | 0 -> Int.compare a.line b.line
        | c -> c)
      !findings
  in
  List.iter
    (fun f ->
      Printf.printf "%s:%d: [%s] %s\n  %s\n" f.file f.line f.frule.rule_name
        f.frule.explain f.snippet)
    findings;
  match findings with
  | [] ->
    print_endline "tact-lint: clean";
    exit 0
  | fs ->
    Printf.printf "tact-lint: %d finding(s)\n" (List.length fs);
    exit 1
