(* Source lint for the tact tree.

   A small textual pass over [.ml] files that flags patterns this codebase
   forbids on its deterministic paths: polymorphic comparison, unspecified
   Hashtbl iteration order, naked [failwith], wall-clock reads, global Random
   state, [Obj.magic], exact float (in)equality on the metrics/bounds paths
   (lib/core, lib/replica, lib/protocols, lib/check), mutable
   module-level state outside lib/util (the interleaving checker replays
   runs in-process, so modules must be re-entrant), and raw domain
   primitives (Domain/Mutex/Condition/Atomic) outside the lib/util
   concurrency layer.  Comments and string literals are stripped before
   matching, so prose never trips a rule.

   A finding is suppressed by a [(* lint: allow <rule> -- why *)] comment on
   the same line or the line directly above it, or for a whole file by
   [(* lint: allow-file <rule> -- why *)] (used by lib/util/pool.ml and
   sync.ml, which are the sanctioned home of the domain primitives).  Exit
   status 1 when any finding survives.  Usage: [tact_lint [DIR ...]]
   (default: [lib]). *)

type rule = { rule_name : string; explain : string }

let rules =
  [
    { rule_name = "polymorphic-compare";
      explain =
        "polymorphic compare; use a typed one (Int.compare, Float.compare, \
         Write.compare_id, ...)" };
    { rule_name = "hashtbl-iter";
      explain =
        "Hashtbl.iter order is unspecified; sort first, or annotate if \
         order-independent" };
    { rule_name = "hashtbl-fold";
      explain =
        "Hashtbl.fold order is unspecified; sort first, or annotate if \
         commutative" };
    { rule_name = "naked-failwith";
      explain = "failwith raises anonymous Failure; use invalid_arg or a typed \
                 exception" };
    { rule_name = "wall-clock";
      explain = "wall-clock read breaks simulation determinism; use the \
                 engine's virtual time" };
    { rule_name = "global-random";
      explain = "global Random state breaks run-to-run determinism; use a \
                 seeded Random.State" };
    { rule_name = "obj-magic"; explain = "Obj.magic defeats the type system" };
    { rule_name = "float-equal";
      explain =
        "float =/<> is exact; use Float.equal or an epsilon comparison \
         (metrics/bounds arithmetic accumulates rounding error)" };
    { rule_name = "module-state";
      explain =
        "mutable module-level state breaks re-entrancy; the checker replays \
         runs in-process, so scope it inside a value or annotate why it is \
         safe" };
    { rule_name = "domain-safety";
      explain =
        "raw Domain/Mutex/Condition/Atomic use belongs in lib/util (Pool, \
         Sync); route concurrency through those wrappers so locking \
         discipline lives in one place" };
    { rule_name = "alloc-hot-path";
      explain =
        "per-call buffer allocation on a hot path; encode through the \
         reusable Codec.Frame arena (one buffer per replica, grown in \
         place), or annotate a cold path" };
  ]

type finding = { file : string; line : int; frule : rule; snippet : string }

(* --- source preparation ------------------------------------------------ *)

let is_ident_char c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
  || c = '_' || c = '\''

(* Blank out comments and string/char literals, preserving line structure.
   Records each comment's text and starting line so allow-annotations survive
   the stripping.  Handles nested comments, escaped quotes and [{id|...|id}]
   quoted strings. *)
let strip src =
  let n = String.length src in
  let out = Bytes.of_string src in
  let comments = ref [] in
  let line = ref 1 in
  let blank i = if Bytes.get out i <> '\n' then Bytes.set out i ' ' in
  let i = ref 0 in
  let bump c = if c = '\n' then incr line in
  while !i < n do
    let c = src.[!i] in
    if c = '(' && !i + 1 < n && src.[!i + 1] = '*' then begin
      (* comment, possibly nested *)
      let start_line = !line in
      let buf = Buffer.create 64 in
      let depth = ref 0 in
      let continue = ref true in
      while !continue && !i < n do
        let c = src.[!i] in
        bump c;
        if c = '(' && !i + 1 < n && src.[!i + 1] = '*' then begin
          incr depth;
          blank !i;
          blank (!i + 1);
          i := !i + 2
        end
        else if c = '*' && !i + 1 < n && src.[!i + 1] = ')' then begin
          decr depth;
          blank !i;
          blank (!i + 1);
          i := !i + 2;
          if !depth = 0 then continue := false
        end
        else begin
          Buffer.add_char buf c;
          blank !i;
          incr i
        end
      done;
      comments := (start_line, Buffer.contents buf) :: !comments
    end
    else if c = '"' then begin
      blank !i;
      incr i;
      let continue = ref true in
      while !continue && !i < n do
        let c = src.[!i] in
        bump c;
        if c = '\\' && !i + 1 < n then begin
          (* the escaped character may itself be a newline (string
             line-continuation): it must still advance the line counter, or
             every comment recorded after it lands one line short and
             allow-annotations stop covering their targets *)
          bump src.[!i + 1];
          blank !i;
          blank (!i + 1);
          i := !i + 2
        end
        else begin
          blank !i;
          incr i;
          if c = '"' then continue := false
        end
      done
    end
    else if c = '{' && !i + 1 < n then begin
      (* quoted string {id|...|id} *)
      let j = ref (!i + 1) in
      while !j < n && src.[!j] >= 'a' && src.[!j] <= 'z' do
        incr j
      done;
      if !j < n && src.[!j] = '|' then begin
        let delim = "|" ^ String.sub src (!i + 1) (!j - !i - 1) ^ "}" in
        let dlen = String.length delim in
        let fin = ref (!j + 1) in
        while
          !fin + dlen <= n && not (String.equal (String.sub src !fin dlen) delim)
        do
          incr fin
        done;
        let stop = min n (!fin + dlen) in
        while !i < stop do
          bump src.[!i];
          blank !i;
          incr i
        done
      end
      else begin
        incr i
      end
    end
    else if
      c = '\''
      && !i + 2 < n
      && (src.[!i + 1] <> '\\' && src.[!i + 2] = '\'')
      && not (!i > 0 && is_ident_char src.[!i - 1])
    then begin
      (* plain char literal — but not the prime in [x'] or a type variable *)
      bump src.[!i + 1];
      blank !i;
      blank (!i + 1);
      blank (!i + 2);
      i := !i + 3
    end
    else if c = '\'' && !i + 1 < n && src.[!i + 1] = '\\' then begin
      (* escaped char literal '\n', '\\', '\123', '\x41' *)
      blank !i;
      incr i;
      let continue = ref true in
      while !continue && !i < n do
        let c = src.[!i] in
        bump c;
        blank !i;
        incr i;
        if c = '\'' then continue := false
      done
    end
    else begin
      bump c;
      incr i
    end
  done;
  (Bytes.to_string out, !comments)

(* --- allow annotations ------------------------------------------------- *)

(* [(* lint: allow rule-a, rule-b -- rationale *)] suppresses those rules on
   the comment's lines and the line after it ends, so a multi-line rationale
   still covers the annotated code.  [(* lint: allow-file rule -- why *)]
   suppresses the rules for the whole file — for the rare module that is
   itself the sanctioned home of a pattern (e.g. [domain-safety] in the
   lib/util concurrency layer). *)
let mentions spec rule_name =
  let rlen = String.length rule_name in
  let found = ref false in
  (* substring match is enough: rule names never overlap *)
  for k = 0 to String.length spec - rlen do
    if String.sub spec k rlen = rule_name then found := true
  done;
  !found

let allowances comments =
  let tbl = Hashtbl.create 8 in
  let file_wide = Hashtbl.create 4 in
  List.iter
    (fun (cline, text) ->
      match String.index_opt text ':' with
      | Some colon
        when String.trim (String.sub text 0 colon) = "lint" -> (
        let rest = String.sub text (colon + 1) (String.length text - colon - 1) in
        let rest = String.trim rest in
        match String.index_opt rest ' ' with
        | Some sp when String.sub rest 0 sp = "allow-file" ->
          let spec = String.sub rest sp (String.length rest - sp) in
          List.iter
            (fun { rule_name; _ } ->
              if mentions spec rule_name then
                Hashtbl.replace file_wide rule_name ())
            rules
        | Some sp when String.sub rest 0 sp = "allow" ->
          let spec = String.sub rest sp (String.length rest - sp) in
          List.iter
            (fun { rule_name; _ } ->
              if mentions spec rule_name then begin
                let last = ref cline in
                String.iter (fun c -> if c = '\n' then incr last) text;
                for l = cline to !last + 1 do
                  Hashtbl.replace tbl (l, rule_name) ()
                done
              end)
            rules
        | _ -> ())
      | _ -> ())
    comments;
  (tbl, file_wide)

(* --- matching ---------------------------------------------------------- *)

let rule name = List.find (fun r -> r.rule_name = name) rules

(* Occurrences of [word] in [line] as a standalone identifier (not a prefix,
   suffix or field access). *)
let has_token ?(qualified = false) line word =
  let n = String.length line and wlen = String.length word in
  let found = ref false in
  for k = 0 to n - wlen do
    if String.sub line k wlen = word then begin
      let pre_ok =
        k = 0
        || (not (is_ident_char line.[k - 1]))
           && (qualified || line.[k - 1] <> '.')
      in
      let post_ok = k + wlen >= n || not (is_ident_char line.[k + wlen]) in
      if pre_ok && post_ok then found := true
    end
  done;
  !found

let prev_word line k =
  let j = ref (k - 1) in
  while !j >= 0 && (line.[!j] = ' ' || line.[!j] = '\t') do
    decr j
  done;
  let stop = !j in
  while !j >= 0 && is_ident_char line.[!j] do
    decr j
  done;
  if stop < 0 then "" else String.sub line (!j + 1) (stop - !j)

(* A bare [compare] that is not a definition ([let compare], [rec], [and]),
   not a field access and not part of a longer name. *)
let bare_compare line =
  let n = String.length line and w = "compare" in
  let bad = ref false in
  for k = 0 to n - String.length w do
    if String.sub line k (String.length w) = w then begin
      let pre_ok =
        k = 0 || ((not (is_ident_char line.[k - 1])) && line.[k - 1] <> '.')
      in
      let post_ok =
        k + String.length w >= n || not (is_ident_char line.[k + String.length w])
      in
      if pre_ok && post_ok then
        match prev_word line k with
        | "let" | "rec" | "and" | "val" -> ()
        | _ -> bad := true
    end
  done;
  !bad

(* Tokens for the float-equal rule: identifiers possibly qualified or
   projected ([Float.abs], [b.ne]) and numeric literals ([0.0], [1e9]). *)
let is_tok_char c = is_ident_char c || c = '.'

let token_after line k =
  let n = String.length line in
  let i = ref k in
  while !i < n && (line.[!i] = ' ' || line.[!i] = '\t') do
    incr i
  done;
  let start = !i in
  while !i < n && is_tok_char line.[!i] do
    incr i
  done;
  String.sub line start (!i - start)

(* Last token ending strictly before [k], with its start index. *)
let token_before line k =
  let j = ref (k - 1) in
  while !j >= 0 && (line.[!j] = ' ' || line.[!j] = '\t') do
    decr j
  done;
  let stop = !j in
  while !j >= 0 && is_tok_char line.[!j] do
    decr j
  done;
  (String.sub line (!j + 1) (stop - !j), !j + 1)

let float_const_names =
  [ "infinity"; "neg_infinity"; "nan"; "epsilon_float"; "max_float"; "min_float" ]

let is_float_literal tok =
  let n = String.length tok in
  if n = 0 then false
  else if List.exists (String.equal tok) float_const_names then true
  else if tok.[0] >= '0' && tok.[0] <= '9' then
    if
      n > 1 && tok.[0] = '0'
      && (let c = tok.[1] in
          c = 'x' || c = 'X' || c = 'o' || c = 'O' || c = 'b' || c = 'B')
    then false (* hex/octal/binary int *)
    else begin
      let has = ref false in
      String.iter (fun c -> if c = '.' || c = 'e' || c = 'E' then has := true) tok;
      !has
    end
  else false

let op_char c =
  match c with
  | '=' | '<' | '>' | '!' | ':' | '+' | '-' | '*' | '/' | '&' | '|' | '@' | '^'
  | '$' | '%' | '~' | '?' ->
    true
  | _ -> false

(* Exact float (in)equality: a standalone [=] or [<>] whose left or right
   operand is a float literal or named float constant.  Binding contexts —
   [let x = 0.0], record fields ([{ ne = 0.0; ... }], including multiline
   fields that start their line), optional arguments [?(ne = infinity)] —
   are not comparisons and are skipped. *)
let float_equal_hit line =
  let n = String.length line in
  let hit = ref false in
  for k = 0 to n - 1 do
    let op_len =
      if
        line.[k] = '<'
        && k + 1 < n
        && line.[k + 1] = '>'
        && (k = 0 || not (op_char line.[k - 1]))
        && (k + 2 >= n || not (op_char line.[k + 2]))
      then 2
      else if
        line.[k] = '='
        && (k = 0 || not (op_char line.[k - 1]))
        && (k + 1 >= n || not (op_char line.[k + 1]))
      then 1
      else 0
    in
    if op_len > 0 then begin
      let right = token_after line (k + op_len) in
      let left, lstart = token_before line k in
      if is_float_literal right || is_float_literal left then
        if op_len = 2 then hit := true (* <> is never a binding *)
        else begin
          let j = ref (lstart - 1) in
          while !j >= 0 && (line.[!j] = ' ' || line.[!j] = '\t') do
            decr j
          done;
          let binding =
            if !j < 0 then
              (* operand opens the line: a wrapped record field like
                 [retry_period = 1.0;] — unless it is a projection, which
                 cannot be a field label in a binding *)
              not (String.contains left '.')
            else
              match line.[!j] with
              | '{' | ';' | ',' | '(' -> true
              | _ -> (
                match prev_word line lstart with
                | "let" | "rec" | "and" | "val" | "mutable" | "method" | "with"
                  ->
                  true
                | _ -> false)
          in
          if not binding then hit := true
        end
    end
  done;
  !hit

(* Module-level mutable state: a column-0 [let NAME = <creator> ...] (with an
   optional type annotation) whose right-hand side is [ref] or a mutable
   container constructor.  [let f args = ref ...] defines a function and is
   fine — fresh state per call. *)
let creator_names =
  [ "ref"; "Hashtbl.create"; "Queue.create"; "Buffer.create"; "Stack.create";
    "Array.make"; "Array.create_float"; "Bytes.make"; "Bytes.create";
    "Atomic.make" ]

let module_state_hit line =
  let n = String.length line in
  if n < 4 || not (String.equal (String.sub line 0 4) "let ") then false
  else begin
    let i = ref 4 in
    while !i < n && line.[!i] = ' ' do
      incr i
    done;
    let start = !i in
    while !i < n && is_ident_char line.[!i] do
      incr i
    done;
    if !i = start then false (* [let () = ...], [let ( + ) = ...] *)
    else begin
      while !i < n && (line.[!i] = ' ' || line.[!i] = '\t') do
        incr i
      done;
      let eq_pos =
        if !i < n && line.[!i] = '=' then Some !i
        else if !i < n && line.[!i] = ':' then begin
          (* skip the type annotation to the binding's [=] *)
          let j = ref (!i + 1) in
          while !j < n && line.[!j] <> '=' do
            incr j
          done;
          if !j < n then Some !j else None
        end
        else None (* parameters follow: a function definition *)
      in
      match eq_pos with
      | None -> false
      | Some e ->
        let rhs = token_after line (e + 1) in
        List.exists (String.equal rhs) creator_names
    end
  end

(* Substring directory test so both relative and absolute roots scope
   correctly: does [dir ^ "/"] occur in [path]? *)
let in_dir path dir =
  let d = dir ^ "/" in
  let dl = String.length d and n = String.length path in
  let found = ref false in
  for k = 0 to n - dl do
    if String.equal (String.sub path k dl) d then found := true
  done;
  !found

let check_line ~floats ~modstate ~allochot line =
  let hits = ref [] in
  let add r = hits := rule r :: !hits in
  if floats && float_equal_hit line then add "float-equal";
  if modstate && module_state_hit line then add "module-state";
  (* Wire hot paths (store codecs, simulated network): every message send
     runs these, so per-call [Bytes.create]/[Buffer.create] is churn the
     Frame arena exists to eliminate. *)
  if
    allochot
    && (has_token ~qualified:true line "Bytes.create"
       || has_token ~qualified:true line "Buffer.create")
  then add "alloc-hot-path";
  if bare_compare line || has_token ~qualified:true line "Stdlib.compare" then
    add "polymorphic-compare";
  if has_token ~qualified:true line "Hashtbl.iter" then add "hashtbl-iter";
  if has_token ~qualified:true line "Hashtbl.fold" then add "hashtbl-fold";
  if has_token line "failwith" then add "naked-failwith";
  if
    has_token ~qualified:true line "Sys.time"
    || has_token ~qualified:true line "Unix.time"
    || has_token ~qualified:true line "Unix.gettimeofday"
  then add "wall-clock";
  if has_token ~qualified:true line "Obj.magic" then add "obj-magic";
  (* Qualified uses of the domain-parallelism modules ([Domain.spawn],
     [Mutex.lock], [Condition.wait], [Atomic.make], ...).  Matching on the
     module path catches every entry point without enumerating them. *)
  (let hit = ref false in
   List.iter
     (fun w ->
       let n = String.length line and wl = String.length w in
       for k = 0 to n - wl do
         if
           String.sub line k wl = w
           && (k = 0 || (line.[k - 1] <> '.' && not (is_ident_char line.[k - 1])))
         then hit := true
       done)
     [ "Domain."; "Mutex."; "Condition."; "Atomic." ];
   if !hit then add "domain-safety");
  (* Global Random calls; the seeded Random.State API is fine. *)
  (let n = String.length line and w = "Random." in
   for k = 0 to n - String.length w - 1 do
     if
       String.sub line k (String.length w) = w
       && (k = 0 || (line.[k - 1] <> '.' && not (is_ident_char line.[k - 1])))
       && not
            (k + 13 <= n && String.sub line (k + String.length w) 6 = "State.")
     then add "global-random"
   done);
  !hits

let lint_file findings path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let src = really_input_string ic len in
  close_in ic;
  let stripped, comments = strip src in
  let allowed, file_allowed = allowances comments in
  let lines = String.split_on_char '\n' stripped in
  (* Path scoping: float equality is policed on the metrics/bounds
     arithmetic paths; module-level state everywhere except lib/util
     (whose containers — pools, interners — are the sanctioned homes for
     it). *)
  let floats =
    in_dir path "lib/core" || in_dir path "lib/replica"
    || in_dir path "lib/protocols" || in_dir path "lib/check"
  in
  let modstate = not (in_dir path "lib/util") in
  let allochot = in_dir path "lib/store" || in_dir path "lib/sim" in
  List.iteri
    (fun idx line ->
      let lno = idx + 1 in
      List.iter
        (fun r ->
          if
            not
              (Hashtbl.mem file_allowed r.rule_name
              || Hashtbl.mem allowed (lno, r.rule_name))
          then
            findings :=
              { file = path; line = lno; frule = r; snippet = String.trim line }
              :: !findings)
        (check_line ~floats ~modstate ~allochot line))
    lines

let rec walk findings path =
  if Sys.is_directory path then
    Array.iter
      (fun entry -> walk findings (Filename.concat path entry))
      (let entries = Sys.readdir path in
       Array.sort String.compare entries;
       entries)
  else if Filename.check_suffix path ".ml" then lint_file findings path

let () =
  let roots =
    match List.tl (Array.to_list Sys.argv) with [] -> [ "lib" ] | l -> l
  in
  let findings = ref [] in
  List.iter (walk findings) roots;
  let findings =
    List.sort
      (fun a b ->
        match String.compare a.file b.file with
        | 0 -> Int.compare a.line b.line
        | c -> c)
      !findings
  in
  List.iter
    (fun f ->
      Printf.printf "%s:%d: [%s] %s\n  %s\n" f.file f.line f.frule.rule_name
        f.frule.explain f.snippet)
    findings;
  match findings with
  | [] ->
    print_endline "tact-lint: clean";
    exit 0
  | fs ->
    Printf.printf "tact-lint: %d finding(s)\n" (List.length fs);
    exit 1
