(* Randomized fault-campaign fuzzer over the nemesis DSL (doc/FAULTS.md).

   Usage:
     tact_fuzz list
     tact_fuzz run --seed N [OPTIONS]
     tact_fuzz all [OPTIONS]
     tact_fuzz replay CX.json

   Options:
     --seed N           campaign master seed (default 1)
     --runs N           seeded runs in the campaign (default 100)
     --budget DUR       wall-clock budget, e.g. 30s / 2m; checked between
                        fixed-size batches so any run that executes is
                        deterministic (default: none)
     --mutation M       planted bug: off | crash_replay | oe_slack:<x>
                        (self-test mode; default off)
     --trace-dir DIR    where to write shrunk counterexamples (default ".")
     -j, --jobs N       fan runs over N worker domains (default 1); the
                        runs, verdicts and digest are identical to -j 1

   Exit status: 0 every run passed (or a replay reproduced exactly), 1 a
   violation was found (counterexample JSON written) or a replay did not
   reproduce, 2 usage error. *)

open Tact_nemesis

let usage () =
  prerr_endline
    "usage: tact_fuzz list | run --seed N [opts] | all [opts] | replay CX.json";
  prerr_endline
    "       opts: --seed N --runs N --budget DUR --mutation M --trace-dir DIR";
  prerr_endline "             -j N | --jobs N";
  exit 2

type cli = {
  mutable seed : int;
  mutable runs : int;
  mutable jobs : int;
  mutable budget : float option;  (* seconds *)
  mutable mutation : Mutation.t;
  mutable trace_dir : string;
}

let parse_budget s =
  let scaled ~suffix ~factor =
    if String.ends_with ~suffix s then
      Option.map
        (fun v -> v *. factor)
        (float_of_string_opt (String.sub s 0 (String.length s - String.length suffix)))
    else None
  in
  match scaled ~suffix:"ms" ~factor:0.001 with
  | Some v -> Some v
  | None -> (
    match scaled ~suffix:"s" ~factor:1.0 with
    | Some v -> Some v
    | None -> (
      match scaled ~suffix:"m" ~factor:60.0 with
      | Some v -> Some v
      | None -> float_of_string_opt s))

let parse_options args =
  let cli =
    {
      seed = 1;
      runs = 100;
      jobs = 1;
      budget = None;
      mutation = Mutation.Off;
      trace_dir = ".";
    }
  in
  let rec go = function
    | [] -> cli
    | "--seed" :: v :: rest ->
      cli.seed <- int_of_string v;
      go rest
    | "--runs" :: v :: rest ->
      cli.runs <- int_of_string v;
      go rest
    | "--budget" :: v :: rest -> (
      match parse_budget v with
      | Some b when b > 0.0 ->
        cli.budget <- Some b;
        go rest
      | _ ->
        Printf.eprintf "tact_fuzz: bad budget %s (try 30s, 2m, 500ms)\n" v;
        usage ())
    | "--mutation" :: v :: rest -> (
      match Mutation.of_string v with
      | Some m ->
        cli.mutation <- m;
        go rest
      | None ->
        Printf.eprintf "tact_fuzz: unknown mutation %s\n" v;
        usage ())
    | "--trace-dir" :: v :: rest ->
      cli.trace_dir <- v;
      go rest
    | ("-j" | "--jobs") :: v :: rest ->
      cli.jobs <- int_of_string v;
      go rest
    | arg :: _ ->
      Printf.eprintf "tact_fuzz: unknown option %s\n" arg;
      usage ()
  in
  try go args
  with Failure _ ->
    prerr_endline "tact_fuzz: bad numeric option value";
    usage ()

let cx_path cli seed =
  Filename.concat cli.trace_dir (Printf.sprintf "tact_fuzz.%d.cx.json" seed)

let show_failure cli (cx : Counterexample.t) =
  let path = cx_path cli cx.Counterexample.seed in
  Counterexample.save ~path cx;
  Printf.printf
    "seed %d VIOLATION (shrunk to %d fault events, quiet after %gs):\n"
    cx.Counterexample.seed
    (List.length cx.Counterexample.events)
    cx.Counterexample.quiet_after;
  List.iter
    (fun (e : Fault.event) ->
      Printf.printf "  @%-8.3f %s\n" e.Fault.at (Fault.describe e.Fault.action))
    cx.Counterexample.events;
  List.iter (Printf.printf "  %s\n") cx.Counterexample.violations;
  Printf.printf "  counterexample written to %s (replay with: tact_fuzz replay %s)\n"
    path path

let campaign cli ~runs =
  let start = Unix.gettimeofday () in
  let budget_check =
    Option.map
      (fun b () -> Unix.gettimeofday () -. start < b)
      cli.budget
  in
  let summary =
    Campaign.run
      {
        Campaign.master_seed = cli.seed;
        runs;
        jobs = cli.jobs;
        mutation = cli.mutation;
        max_shrunk = 3;
        budget_check;
      }
  in
  let elapsed = Unix.gettimeofday () -. start in
  let failed =
    List.length
      (List.filter
         (fun (o : Campaign.outcome) -> o.Campaign.violations <> [])
         summary.Campaign.outcomes)
  in
  Printf.printf
    "campaign seed %d: %d/%d runs, %d failing, digest %s (%.1fs, -j %d%s)\n"
    cli.seed summary.Campaign.completed summary.Campaign.attempted failed
    summary.Campaign.digest elapsed cli.jobs
    (if summary.Campaign.completed < summary.Campaign.attempted then
       ", stopped by budget"
     else "");
  List.iter (show_failure cli) summary.Campaign.failures;
  if failed = 0 then 0 else 1

let single cli =
  let outcome, schedule = Campaign.one_run ~mutation:cli.mutation cli.seed in
  Printf.printf
    "seed %d: %d ops, %d fault events, %d timeouts, %d dropped messages\n"
    cli.seed outcome.Campaign.ops outcome.Campaign.schedule_events
    outcome.Campaign.timeouts outcome.Campaign.dropped;
  List.iter
    (fun (e : Fault.event) ->
      Printf.printf "  @%-8.3f %s\n" e.Fault.at (Fault.describe e.Fault.action))
    schedule.Fault.events;
  if outcome.Campaign.violations = [] then begin
    Printf.printf "  all oracles passed\n";
    0
  end
  else begin
    show_failure cli
      (Counterexample.of_failure ~seed:cli.seed ~mutation:cli.mutation ~schedule);
    1
  end

let replay path =
  match Counterexample.load ~path with
  | Error m ->
    Printf.eprintf "tact_fuzz: cannot load %s: %s\n" path m;
    exit 2
  | Ok cx ->
    let v = Counterexample.replay cx in
    Printf.printf "replaying %s: seed %d, %d fault events, mutation %s\n" path
      cx.Counterexample.seed
      (List.length cx.Counterexample.events)
      (Mutation.to_string cx.Counterexample.mutation);
    List.iter
      (Printf.printf "  %s\n")
      v.Counterexample.result.Runner.violations;
    Printf.printf "  violations reproduced: %b, final fingerprint match: %b\n"
      v.Counterexample.reproduced v.Counterexample.fingerprint_match;
    if v.Counterexample.reproduced && v.Counterexample.fingerprint_match then 0
    else 1

let list () =
  print_endline "fault generators (lib/nemesis/gen.ml, sampled by seed):";
  List.iter print_endline
    [
      "  rolling-partition    isolate one node per round, rolling around the ring";
      "  asymmetric-partition one-way group cut (messages drop in one direction)";
      "  flapping-link        one node pair cut and healed repeatedly";
      "  crash-storm          Poisson crash/recover over random replicas";
      "  loss-burst           global message loss at a sampled rate";
      "  link-loss-burst      loss on one random directed link";
      "  duplication-storm    random per-message duplication";
      "  delay-spike          all delays scaled up for a window";
      "  bandwidth-squeeze    link bandwidth scaled down for a window";
    ];
  print_endline "";
  print_endline
    "every run: 2-4 replicas, sampled topology/conits/bounds/commit scheme,";
  print_endline
    "8-24 client ops, a quiescent heal-all tail, then oracles O1-O6";
  print_endline "(doc/FAULTS.md).  mutations: off | crash_replay | oe_slack:<x>"

let () =
  match Array.to_list Sys.argv with
  | _ :: "list" :: _ ->
    list ();
    exit 0
  | _ :: "run" :: args ->
    let cli = parse_options args in
    exit (single cli)
  | _ :: "all" :: args ->
    let cli = parse_options args in
    exit (campaign cli ~runs:cli.runs)
  | _ :: "replay" :: path :: _ -> exit (replay path)
  | _ -> usage ()
