(* The comment/string stripper shared by tact_lint and tact_analyze:
   blanking must never leak literal contents into the lintable text, and
   line structure must survive exactly (allow-annotations are addressed by
   line number). *)

module Strip = Tact_staticcheck.Strip

let lines s = List.length (String.split_on_char '\n' s)

let contains hay needle =
  let n = String.length hay and m = String.length needle in
  let rec go i = i + m <= n && (String.sub hay i m = needle || go (i + 1)) in
  m = 0 || go 0

let check_gone src needle =
  let stripped, _ = Strip.strip src in
  Alcotest.(check bool)
    (Printf.sprintf "%S blanked" needle)
    false (contains stripped needle);
  Alcotest.(check int) "line count preserved" (lines src) (lines stripped)

let test_comment_blanked () =
  check_gone "let x = 1 (* compare *)\nlet y = 2\n" "compare";
  let _, comments = Strip.strip "let x = 1\n(* note\n   more *)\nlet y = 2\n" in
  Alcotest.(check (list (pair int string)))
    "comment text and start line recorded"
    [ (2, " note\n   more ") ]
    comments

let test_nested_comment () =
  check_gone "(* a (* inner *) b *) let z = 1\n" "inner";
  check_gone "(* a (* inner *) b *) let z = 1\n" "b *)"

let test_string_blanked () =
  check_gone {|let s = "compare (* not a comment *)"|} "compare";
  (* a comment-opener inside the string must not open a comment *)
  let stripped, comments =
    Strip.strip {|let s = "(*" let live = 1|}
  in
  Alcotest.(check bool) "code after string survives" true
    (contains stripped "let live = 1");
  Alcotest.(check int) "no comment recorded" 0 (List.length comments)

let test_escaped_quote () =
  check_gone {|let s = "a\"compare\"b" let t = 1|} "compare";
  let stripped, _ = Strip.strip {|let s = "a\"b" let live = 1|} in
  Alcotest.(check bool) "code after escape survives" true
    (contains stripped "let live = 1")

let test_quoted_string () =
  check_gone "let s = {q|compare \"inside\"|q} let t = 1\n" "compare";
  let stripped, _ = Strip.strip "let s = {q|x|q} let live = 1\n" in
  Alcotest.(check bool) "code after quoted string survives" true
    (contains stripped "let live = 1")

(* The underscore-delimiter bug: [{my_id|...|my_id}] used to fall out of
   the quoted-string scanner at the '_', desyncing on any quote or
   lookalike terminator inside the literal. *)
let test_quoted_string_underscore_id () =
  let src =
    "let s = {my_id|don't \"worry\" |x} |myid} here|my_id}\nlet live = compare\n"
  in
  let stripped, comments = Strip.strip src in
  Alcotest.(check bool) "literal blanked" false (contains stripped "worry");
  Alcotest.(check bool) "lookalike terminator skipped" false
    (contains stripped "here");
  Alcotest.(check bool) "next line intact" true
    (contains stripped "let live = compare");
  Alcotest.(check int) "line count preserved" (lines src) (lines stripped);
  Alcotest.(check int) "no comment recorded" 0 (List.length comments)

let test_crlf_line_numbers () =
  let src = "let a = 1\r\n(* note *)\r\nlet b = \"compare\"\r\nlet c = 3\r\n" in
  let stripped, comments = Strip.strip src in
  Alcotest.(check int) "line count preserved" (lines src) (lines stripped);
  Alcotest.(check (list (pair int string))) "comment on line 2"
    [ (2, " note ") ] comments;
  Alcotest.(check bool) "string blanked" false (contains stripped "compare")

let test_char_literals () =
  let stripped, comments = Strip.strip "let c = '\"' let live = 1\n" in
  Alcotest.(check bool) "quote char does not open a string" true
    (contains stripped "let live = 1");
  Alcotest.(check int) "no comment" 0 (List.length comments);
  (* primes: [x'] is an identifier, not a char literal *)
  let stripped, _ = Strip.strip "let x' = 1 let y = x'\n" in
  Alcotest.(check bool) "primed identifier intact" true
    (contains stripped "let y = x'")

let test_string_line_continuation () =
  (* an escaped newline inside a string still advances the line counter *)
  let src = "let s = \"a\\\n  b\"\n(* here *)\nlet t = 1\n" in
  let _, comments = Strip.strip src in
  Alcotest.(check (list (pair int string))) "comment line survives continuation"
    [ (3, " here ") ] comments

(* Literals *inside* comments are scanned the way the compiler's lexer
   scans them: a "*)" sitting in a string, quoted string or char literal
   within a comment must not terminate the comment. *)
let test_comment_embedded_string () =
  let src = "(* says \"*)\" here *) let live = 1\n" in
  let stripped, comments = Strip.strip src in
  Alcotest.(check bool) "string *) does not end the comment" true
    (contains stripped "let live = 1");
  Alcotest.(check bool) "comment tail blanked" false (contains stripped "here");
  Alcotest.(check int) "one comment" 1 (List.length comments);
  Alcotest.(check bool) "comment text recorded" true
    (contains (snd (List.hd comments)) "says")

let test_comment_embedded_quoted_string () =
  let src = "(* {q|*)|q} tail *) let live = 1\n" in
  let stripped, comments = Strip.strip src in
  Alcotest.(check bool) "quoted-string *) does not end the comment" true
    (contains stripped "let live = 1");
  Alcotest.(check bool) "comment tail blanked" false (contains stripped "tail");
  Alcotest.(check int) "one comment" 1 (List.length comments)

let test_comment_embedded_char_and_prime () =
  (* '"' must not open a string inside the comment, and the apostrophe in
     a word must not start a char-literal scan that swallows the rest. *)
  let src = "(* it's a '\"' char *) let live = 1\n" in
  let stripped, comments = Strip.strip src in
  Alcotest.(check bool) "comment ends where it ends" true
    (contains stripped "let live = 1");
  Alcotest.(check int) "one comment" 1 (List.length comments)

let test_comment_crlf () =
  let src = "(* one\r\n   \"*)\" two *)\r\nlet live = 1\r\n" in
  let stripped, comments = Strip.strip src in
  Alcotest.(check int) "line count preserved" (lines src) (lines stripped);
  Alcotest.(check bool) "code survives" true (contains stripped "let live = 1");
  match comments with
  | [ (l, text) ] ->
    Alcotest.(check int) "comment opens on line 1" 1 l;
    Alcotest.(check bool) "both lines recorded" true (contains text "two")
  | l -> Alcotest.failf "expected one comment, got %d" (List.length l)

let suite =
  [
    Alcotest.test_case "comment blanked and recorded" `Quick test_comment_blanked;
    Alcotest.test_case "nested comments" `Quick test_nested_comment;
    Alcotest.test_case "string literals blanked" `Quick test_string_blanked;
    Alcotest.test_case "escaped quotes" `Quick test_escaped_quote;
    Alcotest.test_case "quoted strings {id|..|id}" `Quick test_quoted_string;
    Alcotest.test_case "underscore delimiter ids" `Quick
      test_quoted_string_underscore_id;
    Alcotest.test_case "CRLF keeps line numbers" `Quick test_crlf_line_numbers;
    Alcotest.test_case "char literals" `Quick test_char_literals;
    Alcotest.test_case "string line continuation" `Quick
      test_string_line_continuation;
    Alcotest.test_case "string inside comment" `Quick
      test_comment_embedded_string;
    Alcotest.test_case "quoted string inside comment" `Quick
      test_comment_embedded_quoted_string;
    Alcotest.test_case "char literal inside comment" `Quick
      test_comment_embedded_char_and_prime;
    Alcotest.test_case "CRLF inside comment" `Quick test_comment_crlf;
  ]
