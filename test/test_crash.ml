(* Crash / recovery: durable log, volatile execution state. *)

open Tact_sim
open Tact_store
open Tact_core
open Tact_replica

let feq a b = Float.abs (a -. b) < 1e-9

let topo n = Topology.uniform ~n ~latency:0.03 ~bandwidth:1_000_000.0

let unit_w conit = { Write.conit; nweight = 1.0; oweight = 1.0 }

let test_crash_halts_processing () =
  let config = { Config.default with Config.antientropy_period = Some 0.5 } in
  let sys = System.create ~topology:(topo 2) ~config () in
  let engine = System.engine sys in
  Engine.schedule engine ~delay:0.1 (fun () -> Replica.crash (System.replica sys 1));
  Engine.schedule engine ~delay:1.0 (fun () ->
      Replica.submit_write (System.replica sys 0) ~deps:[] ~affects:[ unit_w "c" ]
        ~op:(Op.Add ("x", 1.0)) ~k:ignore);
  System.run ~until:20.0 sys;
  Alcotest.(check bool) "down replica learned nothing" true
    (Wlog.num_known (Replica.log (System.replica sys 1)) = 0);
  Alcotest.(check bool) "flag" false (Replica.is_up (System.replica sys 1))

let test_recovery_catches_up_and_converges () =
  let config = { Config.default with Config.antientropy_period = Some 0.5 } in
  let sys = System.create ~topology:(topo 3) ~config () in
  let engine = System.engine sys in
  Engine.schedule engine ~delay:0.1 (fun () -> Replica.crash (System.replica sys 2));
  for k = 1 to 10 do
    Engine.schedule engine
      ~delay:(0.5 *. float_of_int k)
      (fun () ->
        Replica.submit_write (System.replica sys (k mod 2)) ~deps:[]
          ~affects:[ unit_w "c" ]
          ~op:(Op.Add ("x", 1.0))
          ~k:ignore)
  done;
  (* While crashed, stability commitment stalls (same as a partition). *)
  Engine.schedule engine ~delay:8.0 (fun () ->
      Alcotest.(check int) "commitment stalled" 0
        (Wlog.committed_count (Replica.log (System.replica sys 0))));
  Engine.schedule engine ~delay:10.0 (fun () -> Replica.recover (System.replica sys 2));
  System.run ~until:90.0 sys;
  Alcotest.(check bool) "recovered replica caught up" true
    (feq (Db.get_float (Replica.db (System.replica sys 2)) "x") 10.0);
  Alcotest.(check bool) "converged" true (System.converged sys);
  Alcotest.(check int) "all committed after recovery" 10
    (Wlog.committed_count (Replica.log (System.replica sys 0)));
  Alcotest.(check int) "one crash counted" 1 (Replica.crash_count (System.replica sys 2))

let test_crash_abandons_parked_accesses () =
  let config = { Config.default with Config.conits = [ Conit.declare "c" ] } in
  let sys = System.create ~topology:(topo 2) ~config () in
  let engine = System.engine sys in
  Net.partition (System.net sys) [ 0 ] [ 1 ];
  let timed_out = ref false and served = ref false in
  Engine.schedule engine ~delay:1.0 (fun () ->
      Replica.submit_read
        ~on_timeout:(fun () -> timed_out := true)
        (System.replica sys 1)
        ~deps:[ ("c", Bounds.strong) ]
        ~f:(fun db -> Db.get db "x")
        ~k:(fun _ -> served := true));
  Engine.schedule engine ~delay:2.0 (fun () -> Replica.crash (System.replica sys 1));
  System.run ~until:20.0 sys;
  Alcotest.(check bool) "parked access abandoned" true !timed_out;
  Alcotest.(check bool) "never served" false !served

let test_submit_to_crashed_fails_fast () =
  let sys = System.create ~topology:(topo 2) ~config:Config.default () in
  let engine = System.engine sys in
  Engine.schedule engine ~delay:0.1 (fun () -> Replica.crash (System.replica sys 0));
  let rejected = ref false and served = ref false in
  Engine.schedule engine ~delay:1.0 (fun () ->
      Replica.submit_read
        ~on_timeout:(fun () -> rejected := true)
        (System.replica sys 0) ~deps:[]
        ~f:(fun db -> Db.get db "x")
        ~k:(fun _ -> served := true));
  System.run ~until:10.0 sys;
  Alcotest.(check bool) "rejected" true !rejected;
  Alcotest.(check bool) "not served" false !served

let test_durable_log_survives_crash () =
  (* Writes accepted before the crash are still in the log afterwards and
     propagate on recovery. *)
  let config = { Config.default with Config.antientropy_period = Some 0.5 } in
  let sys = System.create ~topology:(topo 2) ~config () in
  let engine = System.engine sys in
  (* Replica 1 accepts a write, crashes before any gossip, then recovers. *)
  Net.partition (System.net sys) [ 0 ] [ 1 ];
  Engine.schedule engine ~delay:0.1 (fun () ->
      Replica.submit_write (System.replica sys 1) ~deps:[] ~affects:[ unit_w "c" ]
        ~op:(Op.Add ("y", 1.0)) ~k:ignore);
  Engine.schedule engine ~delay:0.5 (fun () -> Replica.crash (System.replica sys 1));
  Engine.schedule engine ~delay:5.0 (fun () ->
      Net.heal (System.net sys);
      Replica.recover (System.replica sys 1));
  System.run ~until:60.0 sys;
  Alcotest.(check bool) "write survived and propagated" true
    (feq (Db.get_float (Replica.db (System.replica sys 0)) "y") 1.0);
  Alcotest.(check bool) "converged" true (System.converged sys)

let test_inflight_transfer_discarded_on_crash () =
  (* A transfer already in flight when its target crashes must not mutate
     the target's state after recovery: delivery is bound to the crash epoch
     observed at send time.  Sequence (latency 0.03, jitter 0):
       0.10  write accepted at replica 0
       0.50  gossip tick: replica 0 sends the transfer (arrives ~0.53)
       0.51  replica 1 crashes; partition isolates it from everything else
       0.52  replica 1 recovers (recovery pulls are cut by the partition)
       0.53  the stale pre-crash transfer arrives at a live replica 1 *)
  let config = { Config.default with Config.antientropy_period = Some 0.5 } in
  let sys = System.create ~jitter:0.0 ~topology:(topo 2) ~config () in
  let engine = System.engine sys in
  Engine.schedule engine ~delay:0.1 (fun () ->
      Replica.submit_write (System.replica sys 0) ~deps:[] ~affects:[ unit_w "c" ]
        ~op:(Op.Add ("x", 1.0)) ~k:ignore);
  Engine.schedule engine ~delay:0.51 (fun () ->
      Replica.crash (System.replica sys 1);
      Net.partition (System.net sys) [ 0 ] [ 1 ]);
  Engine.schedule engine ~delay:0.52 (fun () -> Replica.recover (System.replica sys 1));
  System.run ~until:3.0 sys;
  Alcotest.(check bool) "recovered and isolated" true
    (Replica.is_up (System.replica sys 1));
  Alcotest.(check int) "stale in-flight transfer discarded" 0
    (Wlog.num_known (Replica.log (System.replica sys 1)))

let test_on_timeout_fires_exactly_once () =
  (* A parked access abandoned by a crash must not time out a second time
     when its original deadline later fires on the recovered replica. *)
  let config = { Config.default with Config.conits = [ Conit.declare "c" ] } in
  let sys = System.create ~topology:(topo 2) ~config () in
  let engine = System.engine sys in
  Net.partition (System.net sys) [ 0 ] [ 1 ];
  let timeouts = ref 0 and served = ref false in
  Engine.schedule engine ~delay:1.0 (fun () ->
      Replica.submit_read ~deadline:5.0
        ~on_timeout:(fun () -> incr timeouts)
        (System.replica sys 1)
        ~deps:[ ("c", Bounds.strong) ]
        ~f:(fun db -> Db.get db "x")
        ~k:(fun _ -> served := true));
  Engine.schedule engine ~delay:2.0 (fun () -> Replica.crash (System.replica sys 1));
  Engine.schedule engine ~delay:3.0 (fun () -> Replica.recover (System.replica sys 1));
  Engine.schedule engine ~delay:6.0 (fun () -> Net.heal (System.net sys));
  System.run ~until:20.0 sys;
  Alcotest.(check int) "on_timeout fired exactly once" 1 !timeouts;
  Alcotest.(check bool) "never served" false !served

let suite =
  [
    Alcotest.test_case "crash halts processing" `Quick test_crash_halts_processing;
    Alcotest.test_case "recovery catches up" `Quick test_recovery_catches_up_and_converges;
    Alcotest.test_case "crash abandons parked accesses" `Quick test_crash_abandons_parked_accesses;
    Alcotest.test_case "submit to crashed fails fast" `Quick test_submit_to_crashed_fails_fast;
    Alcotest.test_case "durable log survives crash" `Quick test_durable_log_survives_crash;
    Alcotest.test_case "in-flight transfer discarded on crash" `Quick
      test_inflight_transfer_discarded_on_crash;
    Alcotest.test_case "on_timeout fires exactly once" `Quick
      test_on_timeout_fires_exactly_once;
  ]
