(* The write log: tentative/committed split, rollback & reapply, stability
   and CSN commitment, pending-gap buffering, incremental conit bookkeeping. *)

open Tact_store

let feq a b = Float.abs (a -. b) < 1e-9

let unit_w conit = { Write.conit; nweight = 1.0; oweight = 1.0 }

let mk ?(op = Op.Noop) ?(affects = [ unit_w "c" ]) ~origin ~seq ~t () =
  Write.make ~id:{ origin; seq } ~accept_time:t ~op ~affects

let add_op k = Op.Add (k, 1.0)

(* An order-sensitive op: records its position in the application order. *)
let seq_stamp_op name =
  Op.Proc
    {
      name;
      size = 8;
      body =
        (fun db ->
          Db.add db "order.counter" 1.0;
          Db.set db ("pos." ^ name) (Value.Float (Db.get_float db "order.counter"));
          Op.Applied Value.Nil);
    }

let test_accept_applies () =
  let log = Wlog.create ~replicas:2 ~initial:[] in
  let o = Wlog.accept log (mk ~op:(add_op "x") ~origin:0 ~seq:1 ~t:1.0 ()) in
  Alcotest.(check bool) "applied" false (Op.conflicted o);
  Alcotest.(check bool) "visible in full view" true (feq (Db.get_float (Wlog.db log) "x") 1.0);
  Alcotest.(check bool) "not in committed view" true
    (feq (Db.get_float (Wlog.committed_db log) "x") 0.0);
  Alcotest.(check int) "one known" 1 (Wlog.num_known log);
  Alcotest.(check int) "none committed" 0 (Wlog.committed_count log)

let test_accept_out_of_sequence_rejected () =
  let log = Wlog.create ~replicas:2 ~initial:[] in
  Alcotest.(check bool) "seq gap rejected" true
    (try
       ignore (Wlog.accept log (mk ~origin:0 ~seq:5 ~t:1.0 ()));
       false
     with Invalid_argument _ -> true)

let test_insert_duplicate () =
  let log = Wlog.create ~replicas:2 ~initial:[] in
  let w = mk ~origin:1 ~seq:1 ~t:1.0 () in
  (match Wlog.insert log w with
  | Wlog.Inserted _ -> ()
  | _ -> Alcotest.fail "expected insert");
  Alcotest.(check bool) "duplicate detected" true (Wlog.insert log w = Wlog.Duplicate)

let test_insert_gap_buffered () =
  let log = Wlog.create ~replicas:2 ~initial:[] in
  let w2 = mk ~op:(add_op "x") ~origin:1 ~seq:2 ~t:2.0 () in
  let w1 = mk ~op:(add_op "x") ~origin:1 ~seq:1 ~t:1.0 () in
  Alcotest.(check bool) "gap buffered" true (Wlog.insert log w2 = Wlog.Buffered);
  Alcotest.(check bool) "not yet known" false (Wlog.known log w2.Write.id);
  (match Wlog.insert log w1 with
  | Wlog.Inserted _ -> ()
  | _ -> Alcotest.fail "gap filler should insert");
  Alcotest.(check bool) "drained" true (Wlog.known log w2.Write.id);
  Alcotest.(check bool) "both applied" true (feq (Db.get_float (Wlog.db log) "x") 2.0)

let test_out_of_order_insert_reorders () =
  let log = Wlog.create ~replicas:2 ~initial:[] in
  ignore (Wlog.accept log (mk ~op:(seq_stamp_op "b") ~origin:0 ~seq:1 ~t:5.0 ()));
  Alcotest.(check int) "no rollback yet" 0 (Wlog.rollbacks log);
  (* A remote write with an earlier timestamp lands in the middle. *)
  (match Wlog.insert log (mk ~op:(seq_stamp_op "a") ~origin:1 ~seq:1 ~t:3.0 ()) with
  | Wlog.Inserted _ -> ()
  | _ -> Alcotest.fail "insert");
  Alcotest.(check int) "one rollback" 1 (Wlog.rollbacks log);
  let db = Wlog.db log in
  Alcotest.(check bool) "a replayed first" true (feq (Db.get_float db "pos.a") 1.0);
  Alcotest.(check bool) "b replayed second" true (feq (Db.get_float db "pos.b") 2.0);
  let tentative = List.map (fun (w : Write.t) -> w.accept_time) (Wlog.tentative log) in
  Alcotest.(check (list (float 1e-9))) "ts order" [ 3.0; 5.0 ] tentative

let test_outcome_changes_under_reorder () =
  (* A guarded write that succeeds tentatively but conflicts after an
     earlier-timestamped write consumes the resource. *)
  let take =
    Op.guarded ~name:"take"
      ~check:(fun db -> Db.get_float db "stock" >= 1.0)
      ~apply:(fun db ->
        Db.add db "stock" (-1.0);
        Db.get db "stock")
      ()
  in
  let log = Wlog.create ~replicas:2 ~initial:[ ("stock", Value.Float 1.0) ] in
  let mine = mk ~op:take ~origin:0 ~seq:1 ~t:5.0 () in
  (match Wlog.accept log mine with
  | Op.Applied _ -> ()
  | Op.Conflict _ -> Alcotest.fail "tentative should succeed");
  (match Wlog.insert log (mk ~op:take ~origin:1 ~seq:1 ~t:3.0 ()) with
  | Wlog.Inserted (Op.Applied _) -> ()
  | _ -> Alcotest.fail "earlier write should win the stock");
  (match Wlog.outcome log mine.Write.id with
  | Some (Op.Conflict _) -> ()
  | _ -> Alcotest.fail "reordered outcome should now conflict");
  Alcotest.(check bool) "stock empty" true (feq (Db.get_float (Wlog.db log) "stock") 0.0)

let test_commit_stable_prefix () =
  let log = Wlog.create ~replicas:3 ~initial:[] in
  ignore (Wlog.accept log (mk ~op:(add_op "x") ~origin:0 ~seq:1 ~t:1.0 ()));
  ignore (Wlog.accept log (mk ~op:(add_op "x") ~origin:0 ~seq:2 ~t:4.0 ()));
  (match Wlog.insert log (mk ~op:(add_op "x") ~origin:1 ~seq:1 ~t:2.0 ()) with
  | Wlog.Inserted _ -> ()
  | _ -> Alcotest.fail "insert");
  (* Covers: origins 1 and 2 heard up to t=3 -> writes at t=1,2 are stable,
     t=4 is not. *)
  let n = Wlog.commit_stable log ~cover:[| 10.0; 3.0; 3.0 |] in
  Alcotest.(check int) "two committed" 2 n;
  Alcotest.(check int) "committed count" 2 (Wlog.committed_count log);
  Alcotest.(check bool) "committed image has both" true
    (feq (Db.get_float (Wlog.committed_db log) "x") 2.0);
  Alcotest.(check bool) "full image has all three" true
    (feq (Db.get_float (Wlog.db log) "x") 3.0);
  Alcotest.(check int) "one tentative left" 1 (List.length (Wlog.tentative log));
  (* Committing again with the same covers is a no-op. *)
  Alcotest.(check int) "idempotent" 0 (Wlog.commit_stable log ~cover:[| 10.0; 3.0; 3.0 |])

let test_commit_stable_tie_break () =
  (* A write at exactly the cover time of a lower-numbered origin must not
     commit: that origin could still produce a write at the same instant that
     sorts first. *)
  let log = Wlog.create ~replicas:2 ~initial:[] in
  ignore (Wlog.accept log (mk ~origin:1 ~seq:1 ~t:3.0 ()));
  Alcotest.(check int) "tie with lower origin blocks" 0
    (Wlog.commit_stable log ~cover:[| 3.0; 10.0 |]);
  Alcotest.(check int) "strictly past commits" 1
    (Wlog.commit_stable log ~cover:[| 3.0001; 10.0 |]);
  (* Symmetric case: the tied origin is higher-numbered, so its future write
     at the same instant sorts after ours — safe to commit. *)
  let log2 = Wlog.create ~replicas:2 ~initial:[] in
  ignore (Wlog.accept log2 (mk ~origin:0 ~seq:1 ~t:3.0 ()));
  Alcotest.(check int) "tie with higher origin commits" 1
    (Wlog.commit_stable log2 ~cover:[| 10.0; 3.0 |])

let test_final_outcomes () =
  let take =
    Op.guarded ~name:"take"
      ~check:(fun db -> Db.get_float db "stock" >= 1.0)
      ~apply:(fun db ->
        Db.add db "stock" (-1.0);
        Db.get db "stock")
      ()
  in
  let log = Wlog.create ~replicas:2 ~initial:[ ("stock", Value.Float 1.0) ] in
  let late = mk ~op:take ~origin:0 ~seq:1 ~t:5.0 () in
  ignore (Wlog.accept log late);
  ignore (Wlog.insert log (mk ~op:take ~origin:1 ~seq:1 ~t:3.0 ()));
  Alcotest.(check bool) "no final before commit" true
    (Wlog.final_outcome log late.Write.id = None);
  ignore (Wlog.commit_stable log ~cover:[| 99.0; 99.0 |]);
  (match Wlog.final_outcome log late.Write.id with
  | Some (Op.Conflict _) -> ()
  | _ -> Alcotest.fail "final outcome should be the conflicted one")

let test_commit_ids_reorder () =
  (* CSN order disagreeing with timestamp order forces a full-image rebuild. *)
  let log = Wlog.create ~replicas:2 ~initial:[] in
  let a = mk ~op:(seq_stamp_op "a") ~origin:0 ~seq:1 ~t:1.0 () in
  let b = mk ~op:(seq_stamp_op "b") ~origin:0 ~seq:2 ~t:2.0 () in
  ignore (Wlog.accept log a);
  ignore (Wlog.accept log b);
  let n = Wlog.commit_ids log [ b.Write.id; a.Write.id ] in
  Alcotest.(check int) "both committed" 2 n;
  (* Committed image must reflect CSN order: b first. *)
  Alcotest.(check bool) "b first in committed image" true
    (feq (Db.get_float (Wlog.committed_db log) "pos.b") 1.0);
  Alcotest.(check bool) "full image rebuilt to match" true
    (feq (Db.get_float (Wlog.db log) "pos.b") 1.0);
  Alcotest.(check (list (float 1e-9))) "committed order" [ 2.0; 1.0 ]
    (List.map (fun (w : Write.t) -> w.Write.accept_time) (Wlog.committed log));
  (* Unknown and already-committed ids are skipped. *)
  Alcotest.(check int) "skip unknown/dup" 0
    (Wlog.commit_ids log [ a.Write.id; { Write.origin = 1; seq = 9 } ])

let test_conit_bookkeeping () =
  let log = Wlog.create ~replicas:2 ~initial:[] in
  ignore
    (Wlog.accept log
       (mk ~affects:[ { Write.conit = "a"; nweight = 2.0; oweight = 0.5 } ]
          ~origin:0 ~seq:1 ~t:1.0 ()));
  ignore
    (Wlog.accept log
       (mk ~affects:[ { Write.conit = "a"; nweight = -0.5; oweight = 1.0 } ]
          ~origin:0 ~seq:2 ~t:2.0 ()));
  Alcotest.(check bool) "value accumulates signed" true (feq (Wlog.conit_value log "a") 1.5);
  Alcotest.(check bool) "tentative oweight" true (feq (Wlog.tentative_oweight log "a") 1.5);
  Alcotest.(check bool) "max oweight" true (feq (Wlog.tentative_max_oweight log) 1.5);
  ignore (Wlog.commit_stable log ~cover:[| 99.0; 99.0 |]);
  Alcotest.(check bool) "oweight drains at commit" true (feq (Wlog.tentative_oweight log "a") 0.0);
  Alcotest.(check bool) "committed value" true (feq (Wlog.committed_conit_value log "a") 1.5);
  Alcotest.(check bool) "unknown conit zero" true (feq (Wlog.conit_value log "zzz") 0.0)

let test_writes_since () =
  let log = Wlog.create ~replicas:2 ~initial:[] in
  ignore (Wlog.accept log (mk ~origin:0 ~seq:1 ~t:1.0 ()));
  ignore (Wlog.accept log (mk ~origin:0 ~seq:2 ~t:2.0 ()));
  ignore (Wlog.insert log (mk ~origin:1 ~seq:1 ~t:1.5 ()));
  let v = Version_vector.create 2 in
  Alcotest.(check int) "all from zero vector" 3 (List.length (Wlog.writes_since log v));
  Version_vector.set v 0 1;
  let diff = Wlog.writes_since log v in
  Alcotest.(check int) "two missing" 2 (List.length diff);
  (* Returned in timestamp order. *)
  Alcotest.(check (list (float 1e-9))) "ts order" [ 1.5; 2.0 ]
    (List.map (fun (w : Write.t) -> w.Write.accept_time) diff)

(* The k-way merge agrees with a sort of the same writes at every lag,
   including ties on accept_time (broken by origin, then seq) and origins
   with empty deltas. *)
let test_writes_since_merge_order () =
  let replicas = 5 in
  let log = Wlog.create ~replicas ~initial:[] in
  for origin = 0 to replicas - 2 do
    (* Origin [replicas-1] stays empty. *)
    for seq = 1 to 40 do
      (* Coarse timestamps: non-decreasing per origin, with plenty of
         cross-origin ties. *)
      let t = float_of_int ((seq + origin) / 2) in
      ignore (Wlog.insert log (mk ~origin ~seq ~t ()))
    done
  done;
  let ids l = List.map (fun (w : Write.t) -> w.id) l in
  for lag = 0 to 40 do
    let v = Version_vector.create replicas in
    for o = 0 to replicas - 1 do
      Version_vector.set v o (max 0 (40 - lag - o))
    done;
    let diff = Wlog.writes_since log v in
    let expect = List.sort Write.ts_compare diff in
    Alcotest.(check bool)
      (Printf.sprintf "merge order at lag %d" lag)
      true
      (ids diff = ids expect)
  done

let test_insert_batch_single_replay () =
  let log = Wlog.create ~replicas:3 ~initial:[] in
  ignore (Wlog.accept log (mk ~op:(add_op "x") ~origin:0 ~seq:1 ~t:10.0 ()));
  let batch =
    [ mk ~op:(add_op "x") ~origin:1 ~seq:1 ~t:1.0 ();
      mk ~op:(add_op "x") ~origin:1 ~seq:2 ~t:2.0 ();
      mk ~op:(add_op "x") ~origin:2 ~seq:1 ~t:3.0 () ]
  in
  let fresh = Wlog.insert_batch log batch in
  Alcotest.(check int) "three new" 3 (List.length fresh);
  Alcotest.(check int) "single rollback for the batch" 1 (Wlog.rollbacks log);
  Alcotest.(check bool) "all applied" true (feq (Db.get_float (Wlog.db log) "x") 4.0);
  (* Re-inserting the same batch is a no-op. *)
  Alcotest.(check int) "idempotent" 0 (List.length (Wlog.insert_batch log batch))

let test_insert_batch_returns_drained () =
  let log = Wlog.create ~replicas:2 ~initial:[] in
  (* Gap first, then the batch that fills it must report both as fresh. *)
  Alcotest.(check bool) "buffered" true
    (Wlog.insert log (mk ~origin:1 ~seq:2 ~t:2.0 ()) = Wlog.Buffered);
  let fresh = Wlog.insert_batch log [ mk ~origin:1 ~seq:1 ~t:1.0 () ] in
  Alcotest.(check int) "gap filler + drained" 2 (List.length fresh)

(* Property: two logs receiving the same writes in different orders converge
   to the same full image and the same tentative order. *)
let test_convergence_prop =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"logs converge regardless of delivery order"
       ~count:100
       QCheck.(int_bound 1000)
       (fun seed ->
         let rng = Tact_util.Prng.create ~seed in
         let n = 3 in
         (* Build a global pool of writes: per-origin increasing times. *)
         let pool = ref [] in
         let clock = Array.make n 0.0 in
         for origin = 0 to n - 1 do
           let count = 1 + Tact_util.Prng.int rng 8 in
           for seq = 1 to count do
             clock.(origin) <-
               clock.(origin) +. Tact_util.Prng.float rng 5.0 +. 0.001;
             pool :=
               mk
                 ~op:(seq_stamp_op (Printf.sprintf "w%d.%d" origin seq))
                 ~origin ~seq ~t:clock.(origin) ()
               :: !pool
           done
         done;
         let pool = Array.of_list !pool in
         let make_log () =
           let log = Wlog.create ~replicas:n ~initial:[] in
           let order = Array.copy pool in
           Tact_util.Prng.shuffle rng order;
           (* Insert one at a time; gaps buffer and drain naturally. *)
           Array.iter (fun w -> ignore (Wlog.insert log w)) order;
           log
         in
         let a = make_log () and b = make_log () in
         Db.equal (Wlog.db a) (Wlog.db b)
         && List.map (fun (w : Write.t) -> w.Write.id) (Wlog.tentative a)
            = List.map (fun (w : Write.t) -> w.Write.id) (Wlog.tentative b)))

(* Property: stability commitment never commits a write some origin could
   still precede, and repeated partial commits equal one big commit. *)
let test_commit_stable_prop =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"incremental stability commits = one-shot" ~count:100
       QCheck.(int_bound 1000)
       (fun seed ->
         let rng = Tact_util.Prng.create ~seed in
         let n = 3 in
         let clock = Array.make n 0.0 in
         let pool = ref [] in
         for origin = 0 to n - 1 do
           for seq = 1 to 5 do
             clock.(origin) <- clock.(origin) +. Tact_util.Prng.float rng 3.0 +. 0.001;
             pool := mk ~op:(add_op "x") ~origin ~seq ~t:clock.(origin) () :: !pool
           done
         done;
         let build () =
           let log = Wlog.create ~replicas:n ~initial:[] in
           List.iter (fun w -> ignore (Wlog.insert log w)) (List.rev !pool);
           log
         in
         let log1 = build () in
         let log2 = build () in
         let mid = Array.map (fun c -> c /. 2.0) clock in
         let final = Array.map (fun c -> c +. 1.0) clock in
         let a = Wlog.commit_stable log1 ~cover:mid in
         let b = Wlog.commit_stable log1 ~cover:final in
         let c = Wlog.commit_stable log2 ~cover:final in
         a + b = c
         && List.map (fun (w : Write.t) -> w.Write.id) (Wlog.committed log1)
            = List.map (fun (w : Write.t) -> w.Write.id) (Wlog.committed log2)))

let base_suite =
  [
    Alcotest.test_case "accept applies" `Quick test_accept_applies;
    Alcotest.test_case "accept out-of-seq rejected" `Quick test_accept_out_of_sequence_rejected;
    Alcotest.test_case "insert duplicate" `Quick test_insert_duplicate;
    Alcotest.test_case "insert gap buffered" `Quick test_insert_gap_buffered;
    Alcotest.test_case "out-of-order insert reorders" `Quick test_out_of_order_insert_reorders;
    Alcotest.test_case "outcome changes under reorder" `Quick test_outcome_changes_under_reorder;
    Alcotest.test_case "commit_stable prefix" `Quick test_commit_stable_prefix;
    Alcotest.test_case "commit_stable tie-break" `Quick test_commit_stable_tie_break;
    Alcotest.test_case "final outcomes" `Quick test_final_outcomes;
    Alcotest.test_case "commit_ids reorder" `Quick test_commit_ids_reorder;
    Alcotest.test_case "conit bookkeeping" `Quick test_conit_bookkeeping;
    Alcotest.test_case "writes_since" `Quick test_writes_since;
    Alcotest.test_case "writes_since merge order" `Quick
      test_writes_since_merge_order;
    Alcotest.test_case "insert_batch single replay" `Quick test_insert_batch_single_replay;
    Alcotest.test_case "insert_batch returns drained" `Quick test_insert_batch_returns_drained;
    test_convergence_prop;
    test_commit_stable_prop;
  ]

(* Final outcomes under CSN reordering: the committed outcome reflects the
   supplied order, not timestamp order. *)
let test_csn_final_outcome_order () =
  let take =
    Op.guarded ~name:"take"
      ~check:(fun db -> Db.get_float db "stock" >= 1.0)
      ~apply:(fun db ->
        Db.add db "stock" (-1.0);
        Db.get db "stock")
      ()
  in
  let log = Wlog.create ~replicas:2 ~initial:[ ("stock", Value.Float 1.0) ] in
  let early = mk ~op:take ~origin:0 ~seq:1 ~t:1.0 () in
  let late = mk ~op:take ~origin:0 ~seq:2 ~t:2.0 () in
  ignore (Wlog.accept log early);
  ignore (Wlog.accept log late);
  (* The primary decided to commit the late one first. *)
  ignore (Wlog.commit_ids log [ late.Write.id; early.Write.id ]);
  (match Wlog.final_outcome log late.Write.id with
  | Some (Op.Applied _) -> ()
  | _ -> Alcotest.fail "late write should win under CSN order");
  match Wlog.final_outcome log early.Write.id with
  | Some (Op.Conflict _) -> ()
  | _ -> Alcotest.fail "early write should lose under CSN order"

let extra_suite =
  [ Alcotest.test_case "csn final outcome order" `Quick test_csn_final_outcome_order ]

let suite = base_suite @ extra_suite
