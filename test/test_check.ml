(* The systematic interleaving checker: engine choice points, the explorer's
   exhaustive pass over a clean scenario, counterexample JSON round-trips,
   trace replay determinism, and the planted-bug mutation test (an accept-path
   order-error off-by-one that only a reordered schedule can expose). *)

open Tact_core
open Tact_store
open Tact_sim
open Tact_replica
open Tact_check

(* --- engine choice points --------------------------------------------- *)

let test_engine_chooser_default_order () =
  (* A chooser that always picks index 0 must reproduce heap order exactly. *)
  let run_with chooser =
    let e = Engine.create () in
    let order = ref [] in
    let ev name = fun () -> order := name :: !order in
    Engine.schedule e ~delay:0.3 (ev "c");
    Engine.schedule e ~delay:0.1 (ev "a");
    Engine.schedule e ~delay:0.2 (ev "b");
    if chooser then Engine.set_scheduler e (Some (fun ~now:_ _ -> 0));
    Engine.run e;
    List.rev !order
  in
  Alcotest.(check (list string))
    "chooser index 0 = heap order" (run_with false) (run_with true)

let test_engine_chooser_reorder () =
  let e = Engine.create () in
  let order = ref [] in
  let ev name = fun () -> order := name :: !order in
  Engine.schedule e ~delay:0.1 ~label:{ Engine.actor = 0; tag = "x" } (ev "first");
  Engine.schedule e ~delay:0.2 ~label:{ Engine.actor = 1; tag = "x" } (ev "second");
  (* Always fire the last pending event: reverses the two dispatches. *)
  Engine.set_scheduler e (Some (fun ~now:_ cs -> Array.length cs - 1));
  Engine.run e;
  Alcotest.(check (list string)) "reversed" [ "second"; "first" ] (List.rev !order);
  (* Firing a later event first advances the clock to it; the earlier event
     then fires late, and the clock never runs backwards. *)
  Alcotest.(check bool) "clock at max" true (Engine.now e >= 0.2)

let test_engine_chooser_migration () =
  (* Events scheduled in heap mode survive installing and removing a
     strategy. *)
  let e = Engine.create () in
  let count = ref 0 in
  for _ = 1 to 5 do
    Engine.schedule e ~delay:1.0 (fun () -> incr count)
  done;
  Engine.set_scheduler e (Some (fun ~now:_ _ -> 0));
  Alcotest.(check int) "visible as choices" 5 (Array.length (Engine.pending_choices e));
  Engine.set_scheduler e None;
  Engine.run e;
  Alcotest.(check int) "all fired after migration back" 5 !count

let test_engine_chooser_bad_index () =
  let e = Engine.create () in
  Engine.schedule e ~delay:0.1 ignore;
  Engine.set_scheduler e (Some (fun ~now:_ _ -> 7));
  Alcotest.(check bool) "out-of-range choice rejected" true
    (try
       Engine.run e;
       false
     with Invalid_argument _ -> true)

(* --- clean scenario: exhaustive exploration finds nothing -------------- *)

let test_explore_clean_scenario () =
  let sc =
    match Scenario.find "weak-converge" with
    | Some sc -> sc
    | None -> Alcotest.fail "scenario catalogue missing weak-converge"
  in
  let o = Explorer.explore ~options:Explorer.smoke_options sc in
  Alcotest.(check bool) "exhausted" true o.Explorer.stats.Explorer.exhausted;
  Alcotest.(check bool) "no counterexample" true
    (Option.is_none o.Explorer.counterexample);
  Alcotest.(check bool) "explored more than the default schedule" true
    (o.Explorer.stats.Explorer.schedules > 1)

(* --- replay determinism ------------------------------------------------ *)

let test_replay_determinism () =
  (* The same deviation map executed twice yields bit-identical final states
     (same fingerprint) and the same per-step fingerprints. *)
  let sc =
    match Scenario.find "oe-stability" with
    | Some sc -> sc
    | None -> Alcotest.fail "scenario catalogue missing oe-stability"
  in
  (* Perturb the default order with a real deviation so determinism is
     checked on a non-trivial schedule: deviate to the second pending event
     at step 3 of the first run. *)
  let probe = Runner.run sc ~deviations:[] in
  let deviations =
    if Array.length probe.Runner.steps > 3
       && Array.length probe.Runner.steps.(3).Runner.ready > 1
    then
      [ (3, probe.Runner.steps.(3).Runner.ready.(1).Engine.c_seq) ]
    else []
  in
  let r1 = Runner.run sc ~deviations in
  let r2 = Runner.run sc ~deviations in
  Alcotest.(check bool) "final fingerprints equal" true
    (Fingerprint.equal r1.Runner.final_fp r2.Runner.final_fp);
  Alcotest.(check int) "same step count" (Array.length r1.Runner.steps)
    (Array.length r2.Runner.steps);
  Array.iteri
    (fun i (s1 : Runner.step) ->
      let s2 = r2.Runner.steps.(i) in
      if not (Fingerprint.equal s1.Runner.fp s2.Runner.fp) then
        Alcotest.failf "step %d fingerprints differ" i;
      if s1.Runner.chosen <> s2.Runner.chosen then
        Alcotest.failf "step %d choices differ" i)
    r1.Runner.steps;
  Alcotest.(check int) "no divergence" 0 (r1.Runner.diverged + r2.Runner.diverged)

(* --- counterexample JSON round-trip ------------------------------------ *)

let test_trace_json_roundtrip () =
  let cx =
    {
      Counterexample.scenario = "oe-stability";
      deviations = [ (3, 17); (9, 4) ];
      violations = [ "bounds: read at replica 1 violated oe <= 0.5" ];
      final_fp = 0x1234_5678_9abc_def0L;
      steps = 14;
    }
  in
  let json = Counterexample.to_json cx in
  let text = Json.to_string json in
  match Result.bind (Json.parse text) Counterexample.of_json with
  | Error m -> Alcotest.failf "round-trip failed: %s" m
  | Ok cx' ->
    Alcotest.(check string) "scenario" cx.Counterexample.scenario
      cx'.Counterexample.scenario;
    Alcotest.(check (list (pair int int)))
      "deviations" cx.Counterexample.deviations cx'.Counterexample.deviations;
    Alcotest.(check (list string))
      "violations" cx.Counterexample.violations cx'.Counterexample.violations;
    Alcotest.(check bool) "fingerprint" true
      (Fingerprint.equal cx.Counterexample.final_fp cx'.Counterexample.final_fp);
    Alcotest.(check int) "steps" cx.Counterexample.steps cx'.Counterexample.steps

(* --- the planted-bug mutation test ------------------------------------- *)

(* An accept-path off-by-one: [fault_oe_slack] makes the replica admit
   accesses whose tentative order error exceeds the requested bound by up to
   the slack.  In the default schedule the anti-entropy delivery at ~0.35
   commits everything before the read at 0.40, so the bug is invisible; only
   a schedule that fires the read ahead of that delivery serves it over-bound.
   The checker must find that reordering, minimize it, and produce a
   replayable trace. *)
let planted_scenario ~slack =
  {
    Scenario.name = "planted-oe-slack";
    summary = "accept path wrongly grants OE slack; visible only reordered";
    replicas = 2;
    horizon = 0.5;
    drain = 6.0;
    checks =
      {
        Scenario.all_checks with
        Scenario.lcp = false;
        ext_compat = false;
        causal_compat = false;
        theorem1 = false;
      };
    build =
      (fun () ->
        let config =
          {
            Config.default with
            Config.conits = [ Conit.declare ~oe_bound:0.5 "x"; Conit.declare "y" ];
            antientropy_period = Some 0.3;
            retry_period = 0.5;
            fault_oe_slack = slack;
          }
        in
        let sys =
          System.create ~seed:7 ~jitter:0.0 ~loss:0.0
            ~topology:(Topology.uniform ~n:2 ~latency:0.05 ~bandwidth:1e9)
            ~config ()
        in
        let engine = System.engine sys in
        let wr rid time =
          Engine.at engine ~label:{ Engine.actor = rid; tag = "client" } ~time
            (fun () ->
              Replica.submit_write (System.replica sys rid) ~deps:[]
                ~affects:[ { Write.conit = "x"; nweight = 1.0; oweight = 1.0 } ]
                ~op:(Op.Add ("x", 1.0)) ~k:ignore)
        in
        wr 0 0.05;
        wr 1 0.10;
        Engine.at engine ~label:{ Engine.actor = 1; tag = "client" } ~time:0.40
          (fun () ->
            Replica.submit_read (System.replica sys 1)
              ~deps:[ ("x", Bounds.make ~oe:0.5 ()) ]
              ~f:(fun db -> Db.get db "x")
              ~k:ignore);
        sys);
  }

let test_mutation_found () =
  let sc = planted_scenario ~slack:1.0 in
  (* The default schedule must NOT expose the planted bug (otherwise this
     would be testing nothing about systematic exploration). *)
  let default = Runner.run sc ~deviations:[] in
  Alcotest.(check (list string))
    "default schedule clean" [] default.Runner.violations;
  (* ... but exploration must. *)
  let o = Explorer.explore ~options:Explorer.default_options sc in
  match o.Explorer.counterexample with
  | None -> Alcotest.fail "explorer missed the planted accept-path bug"
  | Some cx ->
    Alcotest.(check bool) "non-trivial counterexample" true
      (cx.Counterexample.deviations <> []);
    Alcotest.(check bool) "minimized to a single deviation" true
      (List.length cx.Counterexample.deviations = 1);
    Alcotest.(check bool) "violations recorded" true
      (cx.Counterexample.violations <> []);
    (* The trace replays deterministically (twice) under the sanitizer. *)
    let v1 = Counterexample.replay ~sanitize:true sc cx in
    let v2 = Counterexample.replay ~sanitize:true sc cx in
    Alcotest.(check bool) "replay reproduces the violation" true
      v1.Counterexample.reproduced;
    Alcotest.(check bool) "replay matches recorded fingerprint" true
      v1.Counterexample.fingerprint_match;
    Alcotest.(check bool) "second replay identical" true
      (Fingerprint.equal v1.Counterexample.result.Runner.final_fp
         v2.Counterexample.result.Runner.final_fp);
    Alcotest.(check int) "replays do not diverge" 0
      (v1.Counterexample.result.Runner.diverged
      + v2.Counterexample.result.Runner.diverged);
    (* Serialize and reload: the trace survives the JSON round-trip and
       still replays. *)
    (match
       Result.bind
         (Json.parse (Json.to_string (Counterexample.to_json cx)))
         Counterexample.of_json
     with
    | Error m -> Alcotest.failf "trace JSON round-trip failed: %s" m
    | Ok cx' ->
      let v3 = Counterexample.replay sc cx' in
      Alcotest.(check bool) "reloaded trace still reproduces" true
        v3.Counterexample.reproduced)

let test_parallel_determinism () =
  (* The headline PR-4 guarantee: jobs:4 must report the same verdict, the
     same statistics, and a bit-identical minimized counterexample as
     jobs:1 — on both a violating and a clean space. *)
  let stats =
    Alcotest.testable
      (Fmt.of_to_string (fun (s : Explorer.stats) ->
           Printf.sprintf
             "{schedules=%d; deduped=%d; pruned=%d; max_steps=%d; diverged=%d; exhausted=%b}"
             s.Explorer.schedules s.Explorer.deduped s.Explorer.pruned
             s.Explorer.max_steps s.Explorer.diverged s.Explorer.exhausted))
      ( = )
  in
  let sc = planted_scenario ~slack:1.0 in
  let seq = Explorer.explore ~options:Explorer.default_options ~jobs:1 sc in
  let par = Explorer.explore ~options:Explorer.default_options ~jobs:4 sc in
  Alcotest.check stats "planted: identical statistics" seq.Explorer.stats
    par.Explorer.stats;
  (match (seq.Explorer.counterexample, par.Explorer.counterexample) with
  | Some a, Some b ->
    Alcotest.(check (list (pair int int)))
      "identical minimized deviation map" a.Counterexample.deviations
      b.Counterexample.deviations;
    Alcotest.(check (list string))
      "identical violations" a.Counterexample.violations
      b.Counterexample.violations;
    Alcotest.(check bool) "identical final fingerprint" true
      (Fingerprint.equal a.Counterexample.final_fp b.Counterexample.final_fp);
    Alcotest.(check int) "identical step count" a.Counterexample.steps
      b.Counterexample.steps;
    (* Byte-identical, literally: the serialized traces match. *)
    Alcotest.(check string) "identical serialized trace"
      (Json.to_string (Counterexample.to_json a))
      (Json.to_string (Counterexample.to_json b))
  | None, None -> Alcotest.fail "both job counts missed the planted bug"
  | Some _, None -> Alcotest.fail "jobs:4 missed the planted bug"
  | None, Some _ -> Alcotest.fail "jobs:1 missed the planted bug");
  (* Clean space: identical exhaustion stats, no counterexample. *)
  let sc = planted_scenario ~slack:0.0 in
  let seq = Explorer.explore ~options:Explorer.default_options ~jobs:1 sc in
  let par = Explorer.explore ~options:Explorer.default_options ~jobs:4 sc in
  Alcotest.check stats "clean: identical statistics" seq.Explorer.stats
    par.Explorer.stats;
  Alcotest.(check bool) "clean at any job count" true
    (Option.is_none seq.Explorer.counterexample
    && Option.is_none par.Explorer.counterexample)

let test_mutation_needs_the_fault () =
  (* Same scenario without the slack: the space is clean, proving the
     counterexample above is the planted bug and not a latent protocol
     defect. *)
  let sc = planted_scenario ~slack:0.0 in
  let o = Explorer.explore ~options:Explorer.default_options sc in
  Alcotest.(check bool) "no violation without the planted fault" true
    (Option.is_none o.Explorer.counterexample);
  Alcotest.(check bool) "space exhausted" true
    o.Explorer.stats.Explorer.exhausted

let suite =
  [
    Alcotest.test_case "engine chooser default order" `Quick
      test_engine_chooser_default_order;
    Alcotest.test_case "engine chooser reorder" `Quick test_engine_chooser_reorder;
    Alcotest.test_case "engine chooser migration" `Quick
      test_engine_chooser_migration;
    Alcotest.test_case "engine chooser bad index" `Quick
      test_engine_chooser_bad_index;
    Alcotest.test_case "explore clean scenario" `Quick test_explore_clean_scenario;
    Alcotest.test_case "replay determinism" `Quick test_replay_determinism;
    Alcotest.test_case "trace json round-trip" `Quick test_trace_json_roundtrip;
    Alcotest.test_case "mutation: planted bug found" `Quick test_mutation_found;
    Alcotest.test_case "mutation: clean without fault" `Quick
      test_mutation_needs_the_fault;
    Alcotest.test_case "parallel exploration is deterministic" `Quick
      test_parallel_determinism;
  ]
