(* The AST-based analyzer (lib/staticcheck): loader, scope-aware
   determinism rules, the domain-race pass over the planted fixtures, the
   layering pass against architecture-as-data rules, baselines, and the
   JSON/SARIF renderers. *)

open Tact_staticcheck
module Json = Tact_check.Json

(* Under `dune runtest` the cwd is the test directory; `dune exec
   test/main.exe` (the sanitizer CI step) runs from the project root. *)
let root = if Sys.file_exists "fixtures/staticcheck" then "" else "test/"
let fixture name = root ^ "fixtures/staticcheck/" ^ name

let rules_path =
  if Sys.file_exists "../analysis/layering.rules" then
    "../analysis/layering.rules"
  else "analysis/layering.rules"

(* Run every pass over a set of (path, contents) synthetic sources. *)
let analyze sources =
  let loaded =
    Loader.of_sources
      (List.map (fun (path, src) -> Loader.load_string ~path src) sources)
  in
  let sums = List.map (Summary.of_source loaded) loaded.Loader.sources in
  let graph = Graph.build sums in
  (graph, Races.run graph @ Determinism.run sums)

let find_rule findings id =
  List.filter (fun (f : Report.finding) -> f.f_rule.Report.id = id) findings

let ids findings =
  List.sort_uniq String.compare
    (List.map (fun (f : Report.finding) -> f.f_rule.Report.id) findings)

(* --- loader ------------------------------------------------------------ *)

let test_loader () =
  let s = Loader.load_file (fixture "racy.ml") in
  Alcotest.(check string) "module name" "Racy" s.Loader.s_module;
  Alcotest.(check string) "dir" (root ^ "fixtures/staticcheck") s.Loader.s_dir;
  Alcotest.(check bool) "parses" true (s.Loader.s_ast <> None);
  let bad = Loader.load_string ~path:"lib/x/bad.ml" "let = = =" in
  Alcotest.(check bool) "syntax error captured" true (bad.Loader.s_error <> None);
  Alcotest.(check bool) "no ast on error" true (bad.Loader.s_ast = None)

(* --- race pass over the planted fixtures -------------------------------- *)

let load_fixtures () =
  let loaded =
    Loader.of_sources
      [ Loader.load_file (fixture "racy.ml");
        Loader.load_file (fixture "synced.ml") ]
  in
  let sums = List.map (Summary.of_source loaded) loaded.Loader.sources in
  Races.run (Graph.build sums)

let test_racy_flagged () =
  let findings = load_fixtures () in
  let racy =
    List.filter
      (fun (f : Report.finding) -> f.Report.f_path = fixture "racy.ml")
      findings
  in
  (* SA020: the module-level Hashtbl reached from the Pool.map_list task,
     reported at the pool call site. *)
  let sa020 = find_rule racy "SA020" in
  Alcotest.(check bool) "SA020 reported" true (sa020 <> []);
  List.iter
    (fun (f : Report.finding) ->
      Alcotest.(check string) "SA020 context" "def:tally:counts"
        f.Report.f_context;
      Alcotest.(check int) "SA020 at the Pool.map_list site" 14
        f.Report.f_line)
    sa020;
  (* SA021: the captured local ref mutated inside the task, reported at the
     mutation. *)
  match find_rule racy "SA021" with
  | [ f ] ->
    Alcotest.(check string) "SA021 context" "def:tally:total"
      f.Report.f_context;
    Alcotest.(check int) "SA021 at the incr" 16 f.Report.f_line
  | l -> Alcotest.failf "expected one SA021, got %d" (List.length l)

let test_synced_clean () =
  let findings = load_fixtures () in
  let synced =
    List.filter
      (fun (f : Report.finding) -> f.Report.f_path = fixture "synced.ml")
      findings
  in
  Alcotest.(check int) "Sync-wrapped twin is clean" 0 (List.length synced)

(* --- module-state (SA030) ---------------------------------------------- *)

let test_module_state () =
  let _, findings =
    analyze
      [ ("lib/core/reg.ml",
         "let registry = Hashtbl.create 16\n\
          let make () = Hashtbl.create 16\n\
          let cell = Sync.Cell.make 0\n") ]
  in
  match find_rule findings "SA030" with
  | [ f ] ->
    Alcotest.(check string) "flags the global, not the function or the \
                             Sync cell" "def:registry" f.Report.f_context;
    Alcotest.(check int) "line" 1 f.Report.f_line
  | l -> Alcotest.failf "expected one SA030, got %d" (List.length l)

(* --- determinism pass --------------------------------------------------- *)

let det path src =
  let _, findings = analyze [ (path, src) ] in
  findings

let test_bare_compare () =
  Alcotest.(check (list string)) "bare compare" [ "SA040" ]
    (ids (det "lib/core/a.ml" "let f a b = compare a b\n"))

let test_local_compare_not_flagged () =
  Alcotest.(check (list string)) "own compare shadows" []
    (ids
       (det "lib/core/a.ml"
          "let compare a b = Int.compare a b\nlet f a b = compare a b\n"))

let test_aliased_compare_flagged () =
  Alcotest.(check (list string)) "module S = Stdlib chased" [ "SA040" ]
    (ids (det "lib/core/a.ml" "module S = Stdlib\nlet f a b = S.compare a b\n"))

let test_wall_clock () =
  Alcotest.(check (list string)) "Unix.gettimeofday" [ "SA041" ]
    (ids (det "lib/core/a.ml" "let now () = Unix.gettimeofday ()\n"));
  Alcotest.(check (list string)) "Sys.time" [ "SA041" ]
    (ids (det "lib/core/a.ml" "let now () = Sys.time ()\n"))

let test_global_random () =
  Alcotest.(check (list string)) "Random.int" [ "SA042" ]
    (ids (det "lib/core/a.ml" "let r () = Random.int 10\n"));
  Alcotest.(check (list string)) "Random.State is fine" []
    (ids (det "lib/core/a.ml" "let r st = Random.State.int st 10\n"))

let test_obj_magic () =
  Alcotest.(check (list string)) "Obj.magic" [ "SA043" ]
    (ids (det "lib/core/a.ml" "let c x = Obj.magic x\n"))

let test_float_equal_scoped () =
  Alcotest.(check (list string)) "float = in lib/core" [ "SA044" ]
    (ids (det "lib/core/a.ml" "let z x = x = 0.0\n"));
  Alcotest.(check (list string)) "same code in lib/sim is out of scope" []
    (ids (det "lib/sim/a.ml" "let z x = x = 0.0\n"))

let test_determinism_lib_only () =
  Alcotest.(check (list string)) "bin is out of scope for SA040" []
    (ids (det "bin/tool.ml" "let f a b = compare a b\n"))

(* --- layering pass ------------------------------------------------------ *)

let test_rules =
  "layer util lib/util\n\
   layer core lib/core -> util\n\
   layer replica lib/replica -> util core\n\
   layer bin bin -> *\n\
   restrict Pool -> util\n\
   external Unix -> bin\n"

let rules () =
  match Layering.parse_rules test_rules with
  | Ok r -> r
  | Error e -> Alcotest.failf "rules did not parse: %s" e

let layering sources =
  let loaded =
    Loader.of_sources
      (List.map (fun (path, src) -> Loader.load_string ~path src) sources)
  in
  let sums = List.map (Summary.of_source loaded) loaded.Loader.sources in
  Layering.run (rules ()) (Graph.build sums)

let pool_src = "let submit _ _ = ()\nlet map_list _ _ _ = []\n"
let state_src = "let make x = x\n"

(* Table-driven: each row is (name, extra source, expected rule, expected
   context fragment). *)
let violation_table =
  [
    ( "clean dependency",
      ("lib/replica/node.ml", "let go x = State.make x\n"),
      None );
    ( "injected bad edge: core module uses Pool",
      ("lib/core/sched.ml", "let go p f = Pool.submit p f\n"),
      Some ("SA011", "go:Pool", 1) );
    ( "layer inversion: util reaches up into core",
      ("lib/util/helper.ml", "let h x = State.make x\n"),
      Some ("SA010", "h:State", 1) );
    ( "restricted external: Unix outside bin",
      ("lib/core/clock.ml", "let now () = Unix.gettimeofday ()\n"),
      Some ("SA012", "now:Unix", 1) );
    ( "unmapped directory",
      ("scripts/tool.ml", "let x = 1\n"),
      (* SA013 is a whole-file finding: no location, line 0 *)
      Some ("SA013", "unmapped", 0) );
  ]

let test_layering () =
  List.iter
    (fun (name, (path, src), expect) ->
      let findings =
        layering
          [ ("lib/util/pool.ml", pool_src); ("lib/core/state.ml", state_src);
            (path, src) ]
      in
      match expect with
      | None ->
        Alcotest.(check (list string)) (name ^ ": clean") [] (ids findings)
      | Some (rule, context, line) -> (
        match
          List.filter (fun (f : Report.finding) -> f.Report.f_path = path)
            findings
        with
        | [ f ] ->
          Alcotest.(check string) (name ^ ": rule") rule f.Report.f_rule.Report.id;
          Alcotest.(check string) (name ^ ": context") context
            f.Report.f_context;
          Alcotest.(check int) (name ^ ": line") line f.Report.f_line
        | l ->
          Alcotest.failf "%s: expected one finding in %s, got %d" name path
            (List.length l)))
    violation_table

let test_repo_rules_parse () =
  match Layering.load_rules rules_path with
  | Error e -> Alcotest.failf "repo rules did not parse: %s" e
  | Ok r ->
    List.iter
      (fun dir ->
        Alcotest.(check bool) (dir ^ " mapped") true (Layering.layer_of r dir <> None))
      [ "lib/util"; "lib/core"; "lib/replica"; "lib/staticcheck"; "bin";
        "bench" ]

(* --- baseline ----------------------------------------------------------- *)

let mk_finding id path context =
  Report.finding ~rule_id:id ~path ~loc:Location.none ~context "m"

let test_baseline_roundtrip () =
  let f = mk_finding "SA040" "lib/core/a.ml" "f:compare" in
  let b = Baseline.of_keys [ Report.key f ] in
  Alcotest.(check bool) "mem after of_keys" true (Baseline.mem b f);
  Alcotest.(check bool) "other finding not covered" false
    (Baseline.mem b (mk_finding "SA041" "lib/core/a.ml" "f:wall-clock"))

let test_baseline_render_deterministic () =
  let fs =
    [ mk_finding "SA041" "lib/b.ml" "g:wall-clock";
      mk_finding "SA040" "lib/a.ml" "f:compare";
      mk_finding "SA040" "lib/a.ml" "f:compare" ]
  in
  let r1 = Baseline.render fs and r2 = Baseline.render (List.rev fs) in
  Alcotest.(check string) "order-insensitive and deduped" r1 r2;
  let keys =
    String.split_on_char '\n' r1
    |> List.filter (fun l -> l <> "" && l.[0] <> '#')
  in
  Alcotest.(check (list string)) "sorted unique keys"
    [ "SA040 lib/a.ml f:compare"; "SA041 lib/b.ml g:wall-clock" ] keys

(* --- renderers ---------------------------------------------------------- *)

let test_json_renders () =
  let fs =
    [ mk_finding "SA040" "lib/a.ml" "f:compare";
      mk_finding "SA020" "lib/b.ml" "def:run:tbl" ]
  in
  match Json.parse (Report.json_of ~baselined:(fun _ -> false) fs) with
  | Error e -> Alcotest.failf "json does not parse: %s" e
  | Ok j -> (
    match Json.to_list j with
    | Some l -> Alcotest.(check int) "one object per finding" 2 (List.length l)
    | None -> Alcotest.fail "expected a json array")

let test_sarif_renders () =
  let fs = [ mk_finding "SA040" "lib/a.ml" "f:compare" ] in
  let baselined f = Report.key f = Report.key (List.hd fs) in
  match Json.parse (Report.sarif_of ~baselined fs) with
  | Error e -> Alcotest.failf "sarif does not parse: %s" e
  | Ok j ->
    let get path j =
      List.fold_left
        (fun acc k -> Option.bind acc (Json.member k))
        (Some j) path
    in
    Alcotest.(check (option string)) "version" (Some "2.1.0")
      (Option.bind (get [ "version" ] j) Json.to_str);
    let results =
      Option.bind (get [ "runs" ] j) Json.to_list
      |> Fun.flip Option.bind (fun runs ->
             Option.bind (Json.member "results" (List.hd runs)) Json.to_list)
    in
    (match results with
    | Some [ r ] ->
      Alcotest.(check (option string)) "ruleId" (Some "SA040")
        (Option.bind (Json.member "ruleId" r) Json.to_str);
      Alcotest.(check (option string)) "baselineState" (Some "unchanged")
        (Option.bind (Json.member "baselineState" r) Json.to_str)
    | _ -> Alcotest.fail "expected one result")

let suite =
  [
    Alcotest.test_case "loader" `Quick test_loader;
    Alcotest.test_case "racy fixture flagged" `Quick test_racy_flagged;
    Alcotest.test_case "synced twin clean" `Quick test_synced_clean;
    Alcotest.test_case "module state SA030" `Quick test_module_state;
    Alcotest.test_case "bare compare" `Quick test_bare_compare;
    Alcotest.test_case "local compare not flagged" `Quick
      test_local_compare_not_flagged;
    Alcotest.test_case "aliased Stdlib.compare flagged" `Quick
      test_aliased_compare_flagged;
    Alcotest.test_case "wall clock" `Quick test_wall_clock;
    Alcotest.test_case "global random" `Quick test_global_random;
    Alcotest.test_case "obj magic" `Quick test_obj_magic;
    Alcotest.test_case "float equality scoped" `Quick test_float_equal_scoped;
    Alcotest.test_case "determinism lib-only" `Quick test_determinism_lib_only;
    Alcotest.test_case "layering table" `Quick test_layering;
    Alcotest.test_case "repo rules parse" `Quick test_repo_rules_parse;
    Alcotest.test_case "baseline roundtrip" `Quick test_baseline_roundtrip;
    Alcotest.test_case "baseline render deterministic" `Quick
      test_baseline_render_deterministic;
    Alcotest.test_case "json renders" `Quick test_json_renders;
    Alcotest.test_case "sarif renders" `Quick test_sarif_renders;
  ]
