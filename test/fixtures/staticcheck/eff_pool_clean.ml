(* Clean twin of eff_pool_dirty.ml: no blocking calls, and the raising
   helper is wrapped in the task's own handler, which absorbs the escape.
   Loaded as lib/core/pool_clean.ml; must stay silent. *)
let boom () = failwith "boom"
let work x = x + 1

let go p xs =
  Pool.map_list p (fun x -> try work (boom ()) with Failure _ -> work x) xs
