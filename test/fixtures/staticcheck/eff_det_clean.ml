(* Clean twin of eff_det_dirty.ml: the same shape with an injected clock
   value, seeded Random state, list iteration and a direct call through a
   plain parameter (no record-field escape).  Loaded as
   lib/core/det_clean.ml and declared a det root; must stay silent. *)
let stamp now = int_of_float now
let jitter st n = n + Random.State.int st 3
let spread items = List.iter (fun (_, v) -> ignore v) items
let fire f n = f n

let run now st items f =
  let t = jitter st (stamp now) in
  spread items;
  fire f t
