(* The Sync-wrapped twin of racy.ml: same shape, but the shared table is a
   Sync.Map and the task mutates nothing else — the race pass must not
   flag anything here. *)

let counts : (string, int) Sync.Map.t = Sync.Map.create 16

let bump k =
  Sync.Map.update counts k (function None -> Some 1 | Some n -> Some (n + 1))

let tally pool keys = Pool.map_list pool (fun k -> bump k) keys
