(* Planted dirty twin for the deterministic-core effect rules
   (SA050-SA053): wall-clock, global Random, Hashtbl iteration and a
   record-field escape, each laundered through a helper.  The test loads
   this file as lib/core/det_dirty.ml and declares the module a det root. *)
type hooks = { on_step : int -> int }

let stamp () = int_of_float (Unix.gettimeofday ())
let jitter n = n + Random.int 3
let spread tbl = Hashtbl.iter (fun _ k -> ignore k) tbl
let fire h n = h.on_step n

let run h tbl =
  let t = jitter (stamp ()) in
  spread tbl;
  fire h t
