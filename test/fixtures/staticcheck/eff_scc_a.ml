(* Half of a cross-module mutual recursion: ping <-> Scc_b.pong form one
   SCC, and the wall-clock atom planted in [tick] must reach both members
   through the fixpoint.  Loaded as lib/core/scc_a.ml. *)
let tick () = Unix.gettimeofday ()
let ping n = if n > 0 then Scc_b.pong (n - 1) else tick ()
