(* Clean twin of eff_annot_dirty.ml: the annotation holds.  Loaded as
   lib/core/annot_clean.ml. *)

(* effects: pure *)
let add a b = a + b
