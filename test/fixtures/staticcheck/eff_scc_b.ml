(* Second half of the cross-module SCC; see eff_scc_a.ml.  Loaded as
   lib/core/scc_b.ml. *)
let pong n = Scc_a.ping n
