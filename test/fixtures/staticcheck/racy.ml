(* Planted domain-race fixture for test/test_staticcheck.ml: module-level
   Hashtbl mutated from inside a Pool.map_list task, plus a captured local
   ref.  Never compiled — the analyzer tests only parse it.  The twin in
   synced.ml routes the same shape through Sync and must stay clean. *)

let counts : (string, int) Hashtbl.t = Hashtbl.create 16

let bump k =
  let n = try Hashtbl.find counts k with Not_found -> 0 in
  Hashtbl.replace counts k (n + 1)

let tally pool keys =
  let total = ref 0 in
  Pool.map_list pool
    (fun k ->
      incr total;
      Hashtbl.replace counts k 1;
      bump k)
    keys
