(* Dirty twin for SA063: the entrypoint dispatch can die on an uncaught
   failwith reached through a helper.  Loaded as bin/entry_dirty.ml. *)
let bail () = failwith "usage: entry"
let () = bail ()
