(* Dirty twin for the pool-task effect rules: the task body reaches a
   Unix blocking call (SA060), a Mutex and a Domain.spawn (SA061) and a
   naked failwith (SA062), all through helpers so only the
   interprocedural fixpoint can see them.  Loaded as
   lib/core/pool_dirty.ml. *)
let nap () = Unix.sleepf 0.001
let guard m = Mutex.lock m
let fork f = ignore (Domain.spawn f)
let boom () = failwith "boom"

let go p m xs =
  Pool.map_list p
    (fun x ->
      nap ();
      guard m;
      fork (fun () -> ());
      boom ();
      x)
    xs
