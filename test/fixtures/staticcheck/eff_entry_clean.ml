(* Clean twin of eff_entry_dirty.ml: the same dispatch wrapped in a
   handler that prints and exits.  Loaded as bin/entry_clean.ml. *)
let bail () = failwith "usage: entry"
let () = try bail () with Failure msg -> prerr_endline msg
