(* Dirty twin for SA064: the annotation claims purity but the body reads
   the wall clock.  Loaded as lib/core/annot_dirty.ml. *)

(* effects: pure *)
let leak () = Unix.gettimeofday ()
