(* Nemesis harness: generators, schedule JSON, campaigns, planted bugs. *)

open Tact_util
open Tact_sim
open Tact_store
open Tact_replica
open Tact_nemesis

(* Every sampled schedule is well formed for its plan's replica count, and
   the sampler does produce disturbances (not all-empty schedules). *)
let test_sampled_schedules_validate () =
  let total = ref 0 in
  for seed = 0 to 29 do
    let g = Prng.create ~seed in
    let fault_rng = Prng.split g in
    let p = Sample.plan ~seed in
    let s = Sample.faults fault_rng p in
    total := !total + List.length s.Fault.events;
    Alcotest.(check (list string))
      (Printf.sprintf "seed %d validates" seed)
      []
      (Fault.validate ~n:p.Sample.n s);
    List.iter
      (fun (e : Fault.event) ->
        Alcotest.(check bool) "event precedes quiescence" true
          (e.Fault.at < s.Fault.quiet_after))
      s.Fault.events
  done;
  Alcotest.(check bool) "sampler produces disturbances" true (!total > 0)

let all_actions =
  [
    Fault.Cut ([ 0 ], [ 1; 2 ]);
    Fault.Cut_oneway ([ 2 ], [ 0 ]);
    Fault.Heal_between ([ 0 ], [ 1 ]);
    Fault.Heal_all;
    Fault.Crash 1;
    Fault.Recover 1;
    Fault.Recover_all;
    Fault.Global_loss { rate = 0.25; salt = 77 };
    Fault.Link_loss { src = 0; dst = 2; rate = 0.5; salt = 13 };
    Fault.Duplication { rate = 0.125; salt = 5 };
    Fault.Delay_factor 2.5;
    Fault.Bandwidth_factor 0.5;
  ]

let test_schedule_json_roundtrip () =
  let schedule =
    {
      Fault.events =
        List.mapi
          (fun i action -> { Fault.at = 0.5 +. (0.25 *. float_of_int i); action })
          all_actions;
      quiet_after = 9.75;
    }
  in
  let text = Tact_check.Json.to_string (Fault.schedule_to_json schedule) in
  match Tact_check.Json.parse text with
  | Error m -> Alcotest.failf "reparse failed: %s" m
  | Ok json -> (
    match Fault.schedule_of_json json with
    | None -> Alcotest.fail "schedule_of_json rejected its own output"
    | Some back ->
      Alcotest.(check bool) "quiet_after survives" true
        (Float.equal back.Fault.quiet_after schedule.Fault.quiet_after);
      Alcotest.(check int) "event count survives" (List.length schedule.Fault.events)
        (List.length back.Fault.events);
      List.iter2
        (fun (a : Fault.event) (b : Fault.event) ->
          Alcotest.(check bool) "event time survives" true
            (Float.equal a.Fault.at b.Fault.at);
          Alcotest.(check string) "action survives"
            (Fault.describe a.Fault.action)
            (Fault.describe b.Fault.action))
        schedule.Fault.events back.Fault.events)

(* Satellite: a lossy 3-replica run converges to the same final database as
   a lossless run with the same workload — retransmission recovers every
   dropped transfer. *)
let test_lossy_run_matches_lossless () =
  let run ~loss =
    let config =
      {
        Config.default with
        Config.antientropy_period = Some 0.5;
        retry_period = 0.5;
      }
    in
    let topology = Topology.uniform ~n:3 ~latency:0.03 ~bandwidth:1e6 in
    let sys = System.create ~seed:11 ~jitter:0.0 ~loss ~topology ~config () in
    let engine = System.engine sys in
    for k = 1 to 12 do
      Engine.schedule engine
        ~delay:(0.3 *. float_of_int k)
        (fun () ->
          Replica.submit_write
            (System.replica sys (k mod 3))
            ~deps:[]
            ~affects:[ { Write.conit = "c"; nweight = 1.0; oweight = 1.0 } ]
            ~op:(Op.Add ("x", float_of_int k))
            ~k:ignore)
    done;
    System.run ~until:120.0 sys;
    Alcotest.(check bool) "run converged" true (System.converged sys);
    Replica.db (System.replica sys 0)
  in
  let lossless = run ~loss:0.0 in
  let lossy = run ~loss:0.3 in
  Alcotest.(check bool) "same final database" true (Db.equal lossless lossy)

let test_clean_campaign_passes () =
  let summary =
    Campaign.run { Campaign.default with Campaign.master_seed = 1; runs = 40 }
  in
  Alcotest.(check int) "all runs completed" 40 summary.Campaign.completed;
  Alcotest.(check int) "no failures" 0 (List.length summary.Campaign.failures);
  List.iter
    (fun (o : Campaign.outcome) ->
      Alcotest.(check (list string))
        (Printf.sprintf "run %d clean" o.Campaign.run_seed)
        [] o.Campaign.violations)
    summary.Campaign.outcomes

(* Acceptance: the planted crash-replay bug is found by a campaign, shrunk,
   and replays deterministically from its JSON counterexample. *)
let test_crash_replay_bug_found_and_replayed () =
  let summary =
    Campaign.run
      {
        Campaign.default with
        Campaign.master_seed = 1;
        runs = 200;
        mutation = Mutation.Crash_replay;
        max_shrunk = 1;
      }
  in
  match summary.Campaign.failures with
  | [] -> Alcotest.fail "planted crash-replay bug not found in 200 runs"
  | cx :: _ ->
    Alcotest.(check bool) "shrunk counterexample still violates" true
      (cx.Counterexample.violations <> []);
    (* The same seed passes without the planted bug. *)
    let clean, _ = Campaign.one_run ~mutation:Mutation.Off cx.Counterexample.seed in
    Alcotest.(check (list string))
      "same run is clean without the mutation" [] clean.Campaign.violations;
    (* Round-trip through the JSON file format and replay. *)
    let path = Filename.temp_file "tact_cx" ".json" in
    Fun.protect
      ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
      (fun () ->
        Counterexample.save ~path cx;
        match Counterexample.load ~path with
        | Error m -> Alcotest.failf "load failed: %s" m
        | Ok loaded ->
          let v = Counterexample.replay loaded in
          Alcotest.(check bool) "violations reproduced" true
            v.Counterexample.reproduced;
          Alcotest.(check bool) "final fingerprint matches" true
            v.Counterexample.fingerprint_match;
          (* Replay is deterministic: a second replay agrees exactly. *)
          let v2 = Counterexample.replay loaded in
          Alcotest.(check (list string))
            "second replay identical"
            v.Counterexample.result.Runner.violations
            v2.Counterexample.result.Runner.violations)

(* Acceptance: campaign results for a fixed seed are identical regardless
   of -j (the digest folds every per-run outcome). *)
let test_campaign_jobs_determinism () =
  let run jobs =
    Campaign.run
      { Campaign.default with Campaign.master_seed = 5; runs = 50; jobs }
  in
  let sequential = run 1 and parallel = run 4 in
  Alcotest.(check string)
    "digest independent of jobs" sequential.Campaign.digest
    parallel.Campaign.digest;
  Alcotest.(check int) "same completion count" sequential.Campaign.completed
    parallel.Campaign.completed

(* O6 unit check: a timeout is excused only when its parked window overlaps
   the disturbance envelope. *)
let test_unavailability_accounting () =
  let obs =
    {
      Oracle.o_index = 0;
      o_rid = 1;
      o_submit = 1.0;
      o_deadline = Some 3.0;
      o_read = true;
      o_completions = 0;
      o_timeouts = 1;
    }
  in
  let faulty =
    {
      Fault.events = [ { Fault.at = 2.0; action = Fault.Crash 0 } ];
      quiet_after = 5.0;
    }
  in
  Alcotest.(check (list string))
    "timeout during faults excused" []
    (Oracle.check_unavailability ~schedule:faulty ~slack:1.0 [ obs ]);
  let quiet = { Fault.events = []; quiet_after = 5.0 } in
  Alcotest.(check bool) "timeout with no faults flagged" true
    (Oracle.check_unavailability ~schedule:quiet ~slack:1.0 [ obs ] <> []);
  let late =
    {
      Fault.events = [ { Fault.at = 50.0; action = Fault.Crash 0 } ];
      quiet_after = 60.0;
    }
  in
  Alcotest.(check bool) "timeout before any fault flagged" true
    (Oracle.check_unavailability ~schedule:late ~slack:1.0 [ obs ] <> [])

let suite =
  [
    Alcotest.test_case "sampled schedules validate" `Quick
      test_sampled_schedules_validate;
    Alcotest.test_case "schedule JSON round-trip" `Quick
      test_schedule_json_roundtrip;
    Alcotest.test_case "lossy run matches lossless" `Quick
      test_lossy_run_matches_lossless;
    Alcotest.test_case "clean campaign passes" `Quick test_clean_campaign_passes;
    Alcotest.test_case "crash-replay bug found, shrunk, replayed" `Quick
      test_crash_replay_bug_found_and_replayed;
    Alcotest.test_case "campaign digest independent of jobs" `Quick
      test_campaign_jobs_determinism;
    Alcotest.test_case "unavailability accounting" `Quick
      test_unavailability_accounting;
  ]
