(* The invariant sanitizer: healthy structures audit clean, injected
   corruption is detected with a position, and a whole system runs clean in
   checking mode. *)

open Tact_sim
open Tact_store
open Tact_core
open Tact_replica
module Sanitize = Tact_util.Sanitize

let unit_w conit = { Write.conit; nweight = 1.0; oweight = 1.0 }

let mk ?(op = Op.Noop) ?(affects = [ unit_w "c" ]) ~origin ~seq ~t () =
  Write.make ~id:{ origin; seq } ~accept_time:t ~op ~affects

let with_sanitize f =
  Sanitize.set_enabled true;
  Fun.protect ~finally:Sanitize.clear_forced f

(* A log with four tentative writes from two origins and one committed. *)
let sample_log () =
  let log = Wlog.create ~replicas:2 ~initial:[] in
  List.iter
    (fun (origin, seq, t) ->
      ignore (Wlog.accept log (mk ~op:(Op.Add ("x", 1.0)) ~origin ~seq ~t ())))
    [ (0, 1, 1.0); (1, 1, 1.5); (0, 2, 2.0); (1, 2, 2.5); (0, 3, 3.0) ];
  ignore (Wlog.commit_stable log ~cover:[| 1.2; 1.2 |]);
  log

let test_healthy_clean () =
  let log = sample_log () in
  Alcotest.(check (list string)) "no violations" [] (Wlog.invariant_violations log);
  with_sanitize (fun () -> Wlog.sanitize log)

let test_swap_detected () =
  let log = sample_log () in
  (* Swap two tentative entries: the suffix is no longer in ts order. *)
  Wlog.unsafe_swap_tentative log 0 2;
  let vs = Wlog.invariant_violations log in
  Alcotest.(check bool) "violations found" true (vs <> []);
  let mentions sub s =
    let n = String.length sub in
    let found = ref false in
    for k = 0 to String.length s - n do
      if String.sub s k n = sub then found := true
    done;
    !found
  in
  Alcotest.(check bool) "names a position" true
    (List.exists (mentions "out of order at positions") vs);
  with_sanitize (fun () ->
      match Wlog.sanitize ~ctx:"test" log with
      | () -> Alcotest.fail "sanitize accepted a corrupted log"
      | exception Sanitize.Violation msg ->
        Alcotest.(check bool) "carries the context" true (mentions "[test]" msg))

let test_disabled_is_noop () =
  let log = sample_log () in
  Wlog.unsafe_swap_tentative log 0 2;
  (* Off by default: sanitize must not audit, let alone raise. *)
  Sanitize.clear_forced ();
  if not (Sanitize.enabled ()) then Wlog.sanitize log

let test_db_corruption_detected () =
  let log = sample_log () in
  (* Bypass the log: plant a key no tentative write touches.  Undo records
     restore absolute prior values for the keys they cover, so only damage
     outside the journalled key set survives the revert — and the round-trip
     against the committed image catches exactly that. *)
  Db.set (Wlog.db log) "y" (Value.Float 999.0);
  let vs = Wlog.invariant_violations log in
  Alcotest.(check bool) "undo round-trip fails" true (vs <> [])

let test_system_runs_clean () =
  (* A small partitioned run with pushes, pulls, commits and healing — the
     sanitizer audits every replica after every step. *)
  with_sanitize (fun () ->
      let topology = Topology.uniform ~n:3 ~latency:0.02 ~bandwidth:1_000_000.0 in
      let config =
        {
          Config.default with
          Config.conits = [ Conit.declare ~ne_bound:3.0 "c" ];
          antientropy_period = Some 0.5;
        }
      in
      let sys = System.create ~seed:7 ~topology ~config () in
      let engine = System.engine sys in
      for i = 0 to 2 do
        let r = System.replica sys i in
        Tact_workload.Workload.staggered engine ~start:0.1 ~gap:0.3 ~count:20
          (fun k ->
            Replica.submit_write r ~deps:[]
              ~affects:[ unit_w "c" ]
              ~op:(Op.Add ("x", float_of_int ((k mod 3) + i)))
              ~k:ignore)
      done;
      Engine.at engine ~time:2.0 (fun () ->
          Net.partition (System.net sys) [ 0; 1 ] [ 2 ]);
      Engine.at engine ~time:4.0 (fun () -> Net.heal (System.net sys));
      System.run ~until:12.0 sys;
      (* And the explicit per-replica audit hook is callable. *)
      for i = 0 to 2 do
        Replica.sanity_check (System.replica sys i)
      done)

let suite =
  [
    Alcotest.test_case "healthy log audits clean" `Quick test_healthy_clean;
    Alcotest.test_case "tentative swap detected" `Quick test_swap_detected;
    Alcotest.test_case "disabled mode is a no-op" `Quick test_disabled_is_noop;
    Alcotest.test_case "db corruption detected" `Quick test_db_corruption_detected;
    Alcotest.test_case "system runs clean under sanitizer" `Quick
      test_system_runs_clean;
  ]
