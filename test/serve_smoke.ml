(* Process-level smoke for the tact_serve daemon (CI job "serve-smoke").

   Spawns three real tact_serve processes on loopback, hands every one the
   same nemesis fault schedule (a rolling partition plus a delay spike,
   interpreted at the real-network seam by the fault-injecting transport
   decorator), drives a client workload through the disturbance, and then
   checks the paper's two live-system promises:

   - availability: every weak write submitted during the faults is
     accepted (replicas degrade within declared bounds, they do not fail);
   - convergence: after the quiescent tail heals the network, a query
     under a staleness bound returns the same total at all three replicas.

   Accounting must come back clean — no malformed frames, no parked-frame
   drops — and a SIGTERM drain must exit 0 at every process.

   Usage: serve_smoke.exe path/to/tact_serve.exe
   Logs (per-process stderr + final status) land in ./serve-smoke-logs/ so
   CI can upload them on failure.  Exits 0 on success, 1 on any check
   failure, 2 on setup problems. *)

open Tact_util
open Tact_store
open Tact_transport
module Fault = Tact_nemesis.Fault
module Gen = Tact_nemesis.Gen
module Json = Tact_check.Json

let n = 3
let log_dir = "serve-smoke-logs"
let fail fmt = Printf.ksprintf (fun m -> prerr_endline ("serve_smoke: " ^ m); exit 1) fmt
let setup_fail fmt =
  Printf.ksprintf (fun m -> prerr_endline ("serve_smoke: " ^ m); exit 2) fmt

(* ---- ports: find a base where 2n consecutive loopback ports are free --- *)

let range_free base count =
  let ok = ref true in
  for p = base to base + count - 1 do
    if !ok then begin
      let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      Unix.setsockopt fd Unix.SO_REUSEADDR true;
      (match Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_loopback, p)) with
      | () -> ()
      | exception Unix.Unix_error _ -> ok := false);
      Unix.close fd
    end
  done;
  !ok

let pick_port_base () =
  let rng = Prng.create ~seed:(Unix.getpid ()) in
  let rec go attempts =
    if attempts = 0 then setup_fail "no free port range found";
    let base = 20000 + (2 * Prng.int rng 10000) in
    if range_free base n && range_free (base + 1000) n then base else go (attempts - 1)
  in
  go 50

(* ---- the schedule: same shape the in-process nemesis test uses -------- *)

let write_schedule path =
  let rng = Prng.create ~seed:77 in
  let sched =
    {
      Fault.events =
        Gen.compose
          [
            Gen.rolling_partition rng ~n ~start:0.2 ~period:0.4 ~rounds:3;
            Gen.delay_spike rng ~start:0.3 ~duration:0.6 ~factor:4.0;
          ];
      quiet_after = 1.6;
    }
  in
  (match Fault.validate ~n sched with
  | [] -> ()
  | errs -> setup_fail "bad schedule: %s" (String.concat "; " errs));
  let oc = open_out path in
  output_string oc (Json.to_string ~indent:true (Fault.schedule_to_json sched));
  output_string oc "\n";
  close_out oc

(* ---- a small blocking client for the Serve protocol ------------------- *)

let rec really_write fd s off len =
  if len > 0 then begin
    let w = Unix.write_substring fd s off len in
    really_write fd s (off + w) (len - w)
  end

let rec really_read fd buf off len =
  if len > 0 then
    match Unix.read fd buf off len with
    | 0 -> raise End_of_file
    | r -> really_read fd buf (off + r) (len - r)

let connect_with_retry port ~deadline =
  let addr = Unix.ADDR_INET (Unix.inet_addr_loopback, port) in
  let rec go () =
    let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
    match Unix.connect fd addr with
    | () ->
      Unix.setsockopt_float fd Unix.SO_RCVTIMEO 10.0;
      fd
    | exception Unix.Unix_error _ ->
      Unix.close fd;
      if Unix.gettimeofday () > deadline then
        fail "replica on port %d never started accepting" port
      else begin
        Unix.sleepf 0.05;
        go ()
      end
  in
  go ()

let rpc fd req =
  let payload = Client.request_to_string req in
  let msg = Transport.encode_frame_header ~len:(String.length payload) ^ payload in
  really_write fd msg 0 (String.length msg);
  let hdr = Bytes.create Transport.frame_header_size in
  really_read fd hdr 0 Transport.frame_header_size;
  let len =
    match
      Transport.decode_frame_header hdr ~off:0 ~avail:Transport.frame_header_size
    with
    | Ok (Some len) -> len
    | Ok None | Error _ -> fail "bad response frame header"
  in
  let body = Bytes.create len in
  really_read fd body 0 len;
  match Client.decode_response (Bytes.to_string body) with
  | Ok resp -> resp
  | Error e -> fail "response does not decode: %s" (Transport.error_to_string e)

(* ---------------------------------------------------------------------- *)

let () =
  if Array.length Sys.argv < 2 then setup_fail "usage: serve_smoke.exe TACT_SERVE_EXE";
  let serve_exe = Sys.argv.(1) in
  if not (Sys.file_exists serve_exe) then setup_fail "%s does not exist" serve_exe;
  (try Unix.mkdir log_dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  let port_base = pick_port_base () in
  let client_base = port_base + 1000 in
  let sched_path = Filename.concat log_dir "schedule.json" in
  write_schedule sched_path;

  (* Spawn the three daemons; stderr (fault traces, status lines) and the
     final status JSON on stdout go to per-process logs. *)
  let spawn id =
    let out =
      Unix.openfile
        (Filename.concat log_dir (Printf.sprintf "replica-%d.stdout" id))
        [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ]
        0o644
    and err =
      Unix.openfile
        (Filename.concat log_dir (Printf.sprintf "replica-%d.stderr" id))
        [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ]
        0o644
    in
    let args =
      [|
        serve_exe; "--id"; string_of_int id; "--n"; string_of_int n;
        "--port-base"; string_of_int port_base;
        "--client-port-base"; string_of_int client_base;
        "--seed"; "7"; "--faults"; sched_path;
        "--backoff-base"; "0.05"; "--io-timeout"; "2";
        "--status-every"; "1";
      |]
    in
    (* TACT_SMOKE_TRACE=1 streams each daemon's protocol trace into its
       stderr log — turn it on when a CI failure needs a post-mortem. *)
    let args =
      if Sys.getenv_opt "TACT_SMOKE_TRACE" <> None then
        Array.append args [| "--trace" |]
      else args
    in
    let pid = Unix.create_process serve_exe args Unix.stdin out err in
    Unix.close out;
    Unix.close err;
    pid
  in
  let pids = Array.init n spawn in
  let deadline = Unix.gettimeofday () +. 15.0 in
  let clients = Array.init n (fun i -> connect_with_retry (client_base + i) ~deadline) in

  (* Availability: weak writes to every replica while the schedule runs.
     The submits themselves space the rounds out across the fault window. *)
  let submitted = ref 0 in
  for round = 1 to 4 do
    Array.iteri
      (fun i fd ->
        match
          rpc fd
            (Client.Submit
               { conit = "c"; nweight = 1.0; oweight = 1.0; op = Op.Add ("x", 1.0) })
        with
        | Client.Outcome (Op.Applied _) -> incr submitted
        | r ->
          fail "round %d: write to replica %d not applied: %s" round i
            (Client.describe_response r)
        | exception End_of_file -> fail "replica %d hung up mid-write" i)
      clients;
    Unix.sleepf 0.3
  done;

  (* Convergence: past the quiescent tail, the same bounded read at every
     replica returns the full total. *)
  Unix.sleepf 1.0;
  let expect = float_of_int !submitted in
  Array.iteri
    (fun i fd ->
      match
        rpc fd
          (Client.Query
             { key = "x"; conit = "c"; bounds = Tact_core.Bounds.make ~st:0.4 () })
      with
      | Client.Value v ->
        let got = Value.to_float v in
        if Float.abs (got -. expect) > 1e-9 then
          fail "replica %d settled at %g, want %g" i got expect
      | r -> fail "query at replica %d failed: %s" i (Client.describe_response r)
      | exception End_of_file -> fail "replica %d hung up mid-query" i)
    clients;

  (* Clean accounting straight from the daemons. *)
  Array.iteri
    (fun i fd ->
      match rpc fd Client.Status with
      | Client.Status_r st ->
        if st.Client.c_malformed <> 0 then
          fail "replica %d saw %d malformed frames" i st.Client.c_malformed;
        if not st.Client.c_up then fail "replica %d reports down" i
      | r -> fail "status at replica %d failed: %s" i (Client.describe_response r))
    clients;
  Array.iter Unix.close clients;

  (* Drain: SIGTERM each process; all must exit 0. *)
  Array.iter (fun pid -> Unix.kill pid Sys.sigterm) pids;
  Array.iteri
    (fun i pid ->
      match Unix.waitpid [] pid with
      | _, Unix.WEXITED 0 -> ()
      | _, Unix.WEXITED c -> fail "replica %d exited %d after SIGTERM" i c
      | _, Unix.WSIGNALED s -> fail "replica %d killed by signal %d" i s
      | _, Unix.WSTOPPED _ -> fail "replica %d stopped" i)
    pids;

  (* The final status line each daemon printed must carry clean counters. *)
  Array.iteri
    (fun i _ ->
      let path = Filename.concat log_dir (Printf.sprintf "replica-%d.stdout" i) in
      let ic = open_in path in
      let line = try input_line ic with End_of_file -> "" in
      close_in ic;
      match Json.parse line with
      | Error e -> fail "replica %d final status is not JSON (%s): %s" i e line
      | Ok _ ->
        List.iter
          (fun frag ->
            let ok =
              let fl = String.length frag and ll = String.length line in
              let rec scan o = o + fl <= ll && (String.sub line o fl = frag || scan (o + 1)) in
              scan 0
            in
            if not ok then fail "replica %d final status lacks %s: %s" i frag line)
          [ "\"malformed\":0"; "\"parked_drops\":0"; "\"up\":true" ])
    pids;
  Printf.printf "serve-smoke ok: %d writes, converged at %g, clean drain\n" !submitted
    expect
