(* The binary codec: hand cases, property round trips, corruption handling,
   durable snapshots. *)

open Tact_store

let feq a b = Float.abs (a -. b) < 1e-12

(* --- Value round trips ------------------------------------------------- *)

let value_gen =
  let open QCheck.Gen in
  sized (fun size ->
      fix
        (fun self n ->
          if n = 0 then
            oneof
              [ return Value.Nil;
                map (fun i -> Value.Int i) int;
                map (fun f -> Value.Float f) float;
                map (fun s -> Value.Str s) string_small ]
          else
            frequency
              [ (3, self 0);
                (1, map (fun l -> Value.List l) (list_size (int_bound 5) (self (n / 2)))) ])
        (min size 8))

let value_arb = QCheck.make ~print:Value.to_string value_gen

let test_value_roundtrip =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"value round trip" ~count:500 value_arb (fun v ->
         let s = Codec.to_string Codec.encode_value v in
         let c = Codec.cursor s in
         let v' = Codec.decode_value c in
         Value.equal v v' && c.Codec.pos = String.length c.Codec.data))

let test_value_nan_roundtrip () =
  match
    Codec.decode_value
      (Codec.cursor (Codec.to_string Codec.encode_value (Value.Float Float.nan)))
  with
  | Value.Float f -> Alcotest.(check bool) "nan preserved" true (Float.is_nan f)
  | _ -> Alcotest.fail "wrong shape"

(* --- Op round trips ------------------------------------------------------ *)

let test_op_roundtrip () =
  List.iter
    (fun op ->
      let op' = Codec.decode_op (Codec.cursor (Codec.to_string Codec.encode_op op)) in
      Alcotest.(check string) "op round trip" (Op.describe op) (Op.describe op'))
    [ Op.Noop; Op.Set ("k", Value.Int 3); Op.Add ("k", -2.5);
      Op.Append ("k", Value.Str "x"); Op.Named ("reserve", Value.Int 7) ]

let test_proc_unserializable () =
  let proc = Op.guarded ~name:"g" ~check:(fun _ -> true) ~apply:(fun _ -> Value.Nil) () in
  Alcotest.(check bool) "closure refused" true
    (try
       Codec.encode_op (Codec.Frame.create ~initial:8 ()) proc;
       false
     with Codec.Unserializable _ -> true)

let test_named_proc_applies () =
  Op.register_proc "test.incr_by" (fun arg db ->
      Db.add db "n" (Value.to_float arg);
      Op.Applied (Db.get db "n"));
  let db = Db.create [] in
  (match Op.apply (Op.Named ("test.incr_by", Value.Float 4.0)) db with
  | Op.Applied v -> Alcotest.(check bool) "applied" true (feq (Value.to_float v) 4.0)
  | Op.Conflict _ -> Alcotest.fail "conflicted");
  Alcotest.(check bool) "registered" true (Op.proc_registered "test.incr_by");
  Alcotest.(check bool) "unregistered raises" true
    (try
       ignore (Op.apply (Op.Named ("test.nope", Value.Nil)) db);
       false
     with Invalid_argument _ -> true)

(* --- Write round trips ------------------------------------------------- *)

let write_gen =
  QCheck.Gen.(
    map
      (fun (origin, seq, t, weights) ->
        Write.make
          ~id:{ origin; seq = seq + 1 }
          ~accept_time:t
          ~op:(Op.Add ("x", 1.0))
          ~affects:
            (List.map
               (fun (c, nw, ow) -> { Write.conit = "c" ^ string_of_int c; nweight = nw; oweight = ow })
               weights))
      (quad (int_bound 7) (int_bound 1000)
         (float_bound_exclusive 1e6)
         (list_size (int_bound 4) (triple (int_bound 9) float float))))

let test_write_roundtrip =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"write round trip" ~count:300
       (QCheck.make ~print:Write.to_string write_gen)
       (fun w ->
         let w' = Codec.write_of_string (Codec.write_to_string w) in
         w'.Write.id = w.Write.id
         && w'.Write.accept_time = w.Write.accept_time
         && List.length w'.Write.affects = List.length w.Write.affects
         && List.for_all2
              (fun (a : Write.weight) (b : Write.weight) ->
                a.conit = b.conit
                && a.nweight = b.nweight
                && a.oweight = b.oweight)
              w.Write.affects w'.Write.affects
         && Write.byte_size w = String.length (Codec.write_to_string w)))

let test_write_size_memoized () =
  let ops =
    [ Op.Noop;
      Op.Set ("key", Value.Str "hello");
      Op.Add ("counter", 2.5);
      Op.Append ("xs", Value.List [ Value.Int 1; Value.Str "ab"; Value.Nil ]);
      Op.Named ("reserve", Value.Float 7.0) ]
  in
  List.iteri
    (fun i op ->
      let w =
        Write.make ~id:{ origin = 1; seq = i + 1 }
          ~accept_time:(float_of_int i) ~op
          ~affects:
            [ { Write.conit = "conit-" ^ string_of_int i; nweight = 1.0; oweight = 0.5 } ]
      in
      Alcotest.(check int) "fresh write has no cached size" (-1) w.Write.size_cache;
      let expect = String.length (Codec.write_to_string w) in
      Alcotest.(check int) "cached size = encoded length" expect (Write.byte_size w);
      Alcotest.(check int) "size memoized in the write" expect w.Write.size_cache;
      Alcotest.(check int) "stable on re-query" expect (Write.byte_size w))
    ops

(* --- Vectors -------------------------------------------------------------- *)

let test_vector_roundtrip () =
  let v = Version_vector.create 5 in
  Version_vector.set v 0 3;
  Version_vector.set v 4 99;
  let v' =
    Codec.decode_vector (Codec.cursor (Codec.to_string Codec.encode_vector v))
  in
  Alcotest.(check bool) "equal" true (Version_vector.equal v v')

(* --- Corruption handling --------------------------------------------------- *)

let test_malformed_rejected () =
  let reject s =
    try
      ignore (Codec.decode_value (Codec.cursor s));
      false
    with Codec.Malformed _ -> true
  in
  Alcotest.(check bool) "empty" true (reject "");
  Alcotest.(check bool) "bad tag" true (reject "\xff");
  Alcotest.(check bool) "truncated int" true (reject "\x01\x00\x00");
  (* A list claiming a negative length. *)
  let s = Codec.to_string Codec.encode_value (Value.List [ Value.Int 1 ]) in
  let corrupted = "\x04\xff\xff\xff\xff\xff\xff\xff\xff" ^ String.sub s 9 (String.length s - 9) in
  Alcotest.(check bool) "negative length" true (reject corrupted)

(* --- Snapshots to disk ------------------------------------------------------ *)

let test_snapshot_file_roundtrip () =
  (* Build a real snapshot from a log. *)
  let log = Wlog.create ~replicas:2 ~initial:[ ("greet", Value.Str "hi") ] in
  for seq = 1 to 5 do
    ignore
      (Wlog.accept log
         (Write.make
            ~id:{ origin = 0; seq }
            ~accept_time:(float_of_int seq)
            ~op:(Op.Add ("x", 2.0))
            ~affects:[ { Write.conit = "c"; nweight = 2.0; oweight = 1.0 } ]))
  done;
  ignore (Wlog.commit_stable log ~cover:[| infinity; infinity |]);
  let snap = Wlog.snapshot log in
  let path = Filename.temp_file "tact_snap" ".bin" in
  Codec.save_snapshot ~path snap;
  let snap' = Codec.load_snapshot ~path in
  Sys.remove path;
  Alcotest.(check int) "ncommitted" snap.Wlog.snap_ncommitted snap'.Wlog.snap_ncommitted;
  Alcotest.(check bool) "vector" true
    (Version_vector.equal snap.Wlog.snap_vector snap'.Wlog.snap_vector);
  Alcotest.(check bool) "db" true (Db.equal snap.Wlog.snap_db snap'.Wlog.snap_db);
  (* And a fresh log can install the reloaded snapshot. *)
  let dst = Wlog.create ~replicas:2 ~initial:[] in
  Alcotest.(check bool) "installable" true (Wlog.install_snapshot dst snap');
  Alcotest.(check bool) "state restored" true
    (feq (Db.get_float (Wlog.db dst) "x") 10.0)

(* The arithmetic sizes must agree exactly with the encoders they mirror —
   replicas account snapshot wire sizes without serialising. *)
let test_byte_sizes () =
  let values =
    [
      Value.Nil;
      Value.Int 42;
      Value.Float 3.25;
      Value.Str "";
      Value.Str "hello";
      Value.List [];
      Value.List [ Value.Int 1; Value.Str "x"; Value.List [ Value.Nil ] ];
    ]
  in
  List.iter
    (fun v ->
      Alcotest.(check int) "value size"
        (String.length (Codec.to_string Codec.encode_value v))
        (Codec.value_byte_size v))
    values;
  let log =
    Wlog.create ~replicas:3
      ~initial:[ ("greet", Value.Str "hi"); ("xs", Value.List [ Value.Int 7 ]) ]
  in
  for seq = 1 to 8 do
    ignore
      (Wlog.accept log
         (Write.make
            ~id:{ origin = 0; seq }
            ~accept_time:(float_of_int seq)
            ~op:
              (if seq mod 2 = 0 then Op.Add ("x", 1.5)
               else Op.Append ("xs", Value.Str (String.make seq 'a')))
            ~affects:[ { Write.conit = "conit-" ^ string_of_int (seq mod 2);
                         nweight = 1.0; oweight = 0.5 } ]))
  done;
  ignore (Wlog.commit_stable log ~cover:[| infinity; infinity; infinity |]);
  let snap = Wlog.snapshot log in
  Alcotest.(check int) "snapshot size"
    (String.length (Codec.snapshot_to_string snap))
    (Codec.snapshot_byte_size snap)

let test_snapshot_bad_magic () =
  let path = Filename.temp_file "tact_snap" ".bin" in
  let oc = open_out_bin path in
  output_string oc "NOTASNAPSHOT";
  close_out oc;
  let rejected =
    try
      ignore (Codec.load_snapshot ~path);
      false
    with Codec.Malformed _ -> true
  in
  Sys.remove path;
  Alcotest.(check bool) "bad magic rejected" true rejected

let base_suite =
  [
    test_value_roundtrip;
    Alcotest.test_case "value nan" `Quick test_value_nan_roundtrip;
    Alcotest.test_case "op round trip" `Quick test_op_roundtrip;
    Alcotest.test_case "proc unserializable" `Quick test_proc_unserializable;
    Alcotest.test_case "named proc applies" `Quick test_named_proc_applies;
    test_write_roundtrip;
    Alcotest.test_case "write size memoized" `Quick test_write_size_memoized;
    Alcotest.test_case "vector round trip" `Quick test_vector_roundtrip;
    Alcotest.test_case "malformed rejected" `Quick test_malformed_rejected;
    Alcotest.test_case "snapshot file round trip" `Quick test_snapshot_file_roundtrip;
    Alcotest.test_case "arithmetic byte sizes" `Quick test_byte_sizes;
    Alcotest.test_case "snapshot bad magic" `Quick test_snapshot_bad_magic;
  ]

(* A whole system whose operations are all Named (wire-serialisable): it
   behaves identically, and every accepted write round-trips the codec. *)
let test_fully_serialisable_system () =
  let open Tact_sim in
  let open Tact_replica in
  Op.register_proc "codec.bump" (fun arg db ->
      Db.add db "x" (Value.to_float arg);
      Op.Applied (Db.get db "x"));
  let sys =
    System.create
      ~topology:(Topology.uniform ~n:3 ~latency:0.03 ~bandwidth:1e6)
      ~config:{ Config.default with Config.antientropy_period = Some 0.5 }
      ()
  in
  let engine = System.engine sys in
  for k = 1 to 9 do
    Engine.schedule engine
      ~delay:(0.3 *. float_of_int k)
      (fun () ->
        Replica.submit_write (System.replica sys (k mod 3)) ~deps:[]
          ~affects:[ { Write.conit = "c"; nweight = 1.0; oweight = 1.0 } ]
          ~op:(Op.Named ("codec.bump", Value.Float 1.0))
          ~k:ignore)
  done;
  System.run ~until:60.0 sys;
  Alcotest.(check bool) "converged" true (System.converged sys);
  Alcotest.(check bool) "value" true
    (feq (Db.get_float (Replica.db (System.replica sys 0)) "x") 9.0);
  List.iter
    (fun (w : Write.t) ->
      let w' = Codec.write_of_string (Codec.write_to_string w) in
      Alcotest.(check bool) "write round-trips" true (w'.Write.id = w.Write.id))
    (System.all_writes sys)

let system_suite =
  [ Alcotest.test_case "fully serialisable system" `Quick test_fully_serialisable_system ]

let suite = base_suite @ system_suite
