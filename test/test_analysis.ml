(* The static analyzer: every diagnostic code has a triggering case and a
   clean case, the Spec adapters extract usages faithfully, and the guard
   hook rejects bad configurations at System.create while leaving the in-tree
   experiments untouched. *)

open Tact_core
open Tact_replica
module A = Tact_analysis.Analyzer
module D = Tact_analysis.Diagnostic
module Guard = Tact_analysis.Guard

let topo ?(latency = 0.04) n =
  Tact_sim.Topology.uniform ~n ~latency ~bandwidth:1_000_000.0

let has code ds = List.exists (fun (d : D.t) -> String.equal d.D.code code) ds

let fires name code ds =
  Alcotest.(check bool) (name ^ ": " ^ code ^ " fires") true (has code ds)

let clean name code ds =
  Alcotest.(check bool) (name ^ ": " ^ code ^ " absent") false (has code ds)

(* A healthy single-conit configuration used as the clean baseline: bound 9
   over n=4 gives a per-peer share of 3, usages stay under every bound. *)
let good_conit =
  Conit.declare ~ne_bound:9.0 ~oe_bound:5.0 ~st_bound:10.0 ~initial_value:100.0
    "c"

let good_config =
  { Config.default with Config.conits = [ good_conit ]; antientropy_period = Some 1.0 }

let good_usages =
  [
    A.usage ~name:"op" ~affects:[ ("c", 1.0, 1.0) ] ();
    A.usage ~name:"q" ~kind:`Query
      ~depends:[ ("c", { Bounds.weak with Bounds.oe = 4.0; st = 20.0 }) ]
      ();
  ]

let analyze ?(n = 4) ?topology ?(usages = good_usages) config =
  A.analyze ~n ?topology ~usages config

let test_clean_baseline () =
  let ds = analyze ~topology:(topo 4) good_config in
  Alcotest.(check (list string)) "no diagnostics" []
    (List.map (fun (d : D.t) -> D.to_string d) ds)

(* --- declaration shape ------------------------------------------------- *)

let test_ta001 () =
  let bad b =
    { good_config with Config.conits = [ b ] }
  in
  fires "negative ne" "TA001"
    (analyze (bad (Conit.declare ~ne_bound:(-1.0) "c")));
  fires "nan st" "TA001" (analyze (bad (Conit.declare ~st_bound:Float.nan "c")));
  fires "nan initial" "TA001"
    (analyze (bad (Conit.declare ~ne_bound:1.0 ~initial_value:Float.nan "c")));
  clean "good bounds" "TA001" (analyze good_config)

let test_ta002 () =
  let dup =
    { good_config with Config.conits = [ good_conit; Conit.declare ~ne_bound:1.0 "c" ] }
  in
  fires "duplicate" "TA002" (analyze dup);
  clean "unique" "TA002" (analyze good_config)

let test_ta003 () =
  let with_policy p = { good_config with Config.budget_policy = p } in
  fires "wrong arity" "TA003"
    (analyze (with_policy (Tact_protocols.Budget.Proportional [| 1.0 |])));
  fires "negative rate" "TA003"
    (analyze
       (with_policy (Tact_protocols.Budget.Proportional [| 1.0; -1.0; 1.0; 1.0 |])));
  fires "zero sum" "TA003"
    (analyze
       (with_policy (Tact_protocols.Budget.Proportional [| 0.0; 0.0; 0.0; 0.0 |])));
  clean "good rates" "TA003"
    (analyze
       (with_policy (Tact_protocols.Budget.Proportional [| 1.0; 2.0; 1.0; 1.0 |])));
  clean "even" "TA003" (analyze good_config)

let test_ta004 () =
  let with_plan p = { good_config with Config.gossip_plan = Some p } in
  fires "out of range" "TA004" (analyze (with_plan (fun _ -> [| 7 |])));
  fires "self target" "TA004" (analyze (with_plan (fun i -> [| i |])));
  clean "ring" "TA004" (analyze (with_plan (fun i -> [| (i + 1) mod 4 |])))

(* --- schedule checks --------------------------------------------------- *)

let test_ta005 () =
  let rel v =
    { good_config with Config.conits = [ Conit.declare ~ne_rel_bound:0.1 ~initial_value:v "c" ] }
  in
  fires "zero baseline" "TA005" (analyze (rel 0.0));
  clean "real baseline" "TA005" (analyze (rel 100.0))

let test_ta006 () =
  let cfg period st =
    {
      good_config with
      Config.conits = [ Conit.declare ~st_bound:st "c" ];
      antientropy_period = period;
    }
  in
  fires "st below period" "TA006" (analyze (cfg (Some 5.0) 1.0));
  clean "st above period" "TA006" (analyze (cfg (Some 0.5) 1.0));
  (* Also reachable through a query dependency rather than the declaration. *)
  let dep_usage st =
    [ A.usage ~name:"q" ~kind:`Query
        ~depends:[ ("c", { Bounds.weak with Bounds.st }) ]
        ();
      A.usage ~name:"op" ~affects:[ ("c", 1.0, 1.0) ] ()
    ]
  in
  fires "dep st below period" "TA006"
    (analyze ~usages:(dep_usage 1.0) (cfg (Some 5.0) infinity))

let test_ta007 () =
  let cfg st =
    {
      good_config with
      Config.conits = [ Conit.declare ~st_bound:st "c" ];
      antientropy_period = None;
    }
  in
  fires "no anti-entropy" "TA007" (analyze (cfg 1.0));
  (* No staleness requirement anywhere (declaration or deps) — clean. *)
  clean "unbounded st" "TA007"
    (analyze ~usages:[ List.nth good_usages 0 ] (cfg infinity));
  clean "n=1" "TA007" (analyze ~n:1 (cfg 1.0))

let test_ta008 () =
  let cfg st =
    { good_config with Config.conits = [ Conit.declare ~st_bound:st "c" ] }
  in
  (* RTT = 2 x 40 ms = 80 ms. *)
  fires "st below rtt" "TA008" (analyze ~topology:(topo 4) (cfg 0.05));
  clean "st above rtt" "TA008" (analyze ~topology:(topo 4) (cfg 0.5));
  clean "no topology" "TA008" (analyze (cfg 0.05))

let test_ta009 () =
  let cfg scheme oe =
    {
      good_config with
      Config.conits = [ Conit.declare ~oe_bound:oe "c" ];
      commit_scheme = scheme;
    }
  in
  fires "zero oe under stability" "TA009" (analyze (cfg Config.Stability 0.0));
  clean "primary commitment" "TA009" (analyze (cfg (Config.Primary 0) 0.0));
  clean "loose oe" "TA009" (analyze (cfg Config.Stability 5.0))

let test_ta010 () =
  let cfg = { good_config with Config.conits = [ Conit.unconstrained "c" ] } in
  fires "unconstrained declaration" "TA010" (analyze cfg);
  clean "bounded declaration" "TA010" (analyze good_config)

(* --- usage checks ------------------------------------------------------ *)

let test_ta011 () =
  (* Bound 9 over n=4 splits as 3 per peer under Even. *)
  let with_weight w =
    [
      A.usage ~name:"op" ~affects:[ ("c", w, 1.0) ] ();
      List.nth good_usages 1;
    ]
  in
  fires "write exceeds share" "TA011" (analyze ~usages:(with_weight 4.0) good_config);
  clean "write fits share" "TA011" (analyze ~usages:(with_weight 2.0) good_config);
  clean "n=1" "TA011" (analyze ~n:1 ~usages:(with_weight 4.0) good_config);
  (* A proportional policy shrinks some share below the even split. *)
  let prop =
    { good_config with
      Config.budget_policy = Tact_protocols.Budget.Proportional [| 9.0; 1.0; 1.0; 1.0 |]
    }
  in
  fires "skewed shares" "TA011" (analyze ~usages:(with_weight 2.0) prop)

let test_ta012 () =
  let usages oe ow =
    [
      A.usage ~name:"op" ~affects:[ ("c", 1.0, ow) ] ();
      A.usage ~name:"q" ~kind:`Query
        ~depends:[ ("c", { Bounds.weak with Bounds.oe }) ]
        ();
    ]
  in
  fires "oweight exceeds dep bound" "TA012"
    (analyze ~usages:(usages 0.5 1.0) good_config);
  clean "oweight fits" "TA012" (analyze ~usages:(usages 2.0 1.0) good_config)

let test_ta013 () =
  fires "never affected" "TA013"
    (analyze ~usages:[ List.nth good_usages 1 ] good_config);
  clean "affected" "TA013" (analyze good_config)

let test_ta014 () =
  fires "never depended" "TA014"
    (analyze ~usages:[ List.nth good_usages 0 ] good_config);
  clean "depended" "TA014" (analyze good_config);
  (* An unconstrained conit has nothing to depend on — no warning. *)
  clean "unconstrained" "TA014"
    (analyze
       ~usages:[ A.usage ~name:"op" ~affects:[ ("c", 1.0, 1.0) ] () ]
       { good_config with Config.conits = [ Conit.unconstrained "c" ] })

let test_ta015 () =
  let ghost =
    A.usage ~name:"op" ~affects:[ ("ghost", 1.0, 1.0) ] ()
  in
  fires "undeclared affect" "TA015"
    (analyze ~usages:(ghost :: good_usages) good_config);
  let ghost_dep =
    A.usage ~name:"q" ~kind:`Query
      ~depends:[ ("ghost", { Bounds.weak with Bounds.ne = 1.0 }) ]
      ()
  in
  fires "undeclared NE dep" "TA015"
    (analyze ~usages:(ghost_dep :: good_usages) good_config);
  clean "all declared" "TA015" (analyze good_config)

let test_ta016 () =
  let w nw ow = A.usage ~name:"op" ~affects:[ ("c", nw, ow) ] () in
  fires "nan nweight" "TA016"
    (analyze ~usages:(w Float.nan 1.0 :: good_usages) good_config);
  fires "negative oweight" "TA016"
    (analyze ~usages:(w 1.0 (-1.0) :: good_usages) good_config);
  let bad_dep =
    A.usage ~name:"q" ~kind:`Query
      ~depends:[ ("c", { Bounds.weak with Bounds.ne = -1.0 }) ]
      ()
  in
  fires "negative dep bound" "TA016"
    (analyze ~usages:(bad_dep :: good_usages) good_config);
  clean "good weights" "TA016" (analyze good_config)

(* --- code table -------------------------------------------------------- *)

let test_codes_table () =
  Alcotest.(check int) "16 codes" 16 (List.length A.codes);
  let names = List.map (fun (c, _, _) -> c) A.codes in
  Alcotest.(check (list string)) "unique and sorted" names
    (List.sort_uniq String.compare names)

(* --- Spec adapters ----------------------------------------------------- *)

let test_of_op_class () =
  let cls =
    Spec.op_class ~name:"purchase"
      ~affects:(fun qty -> [ ("c", float_of_int qty, 1.0) ])
      ~depends:(fun _ -> [ ("c", { Bounds.weak with Bounds.ne = 5.0 }) ])
      ~op:(fun qty -> Tact_store.Op.Add ("x", float_of_int qty))
      ()
  in
  let u = A.of_op_class cls ~args:[ 1; 3 ] in
  Alcotest.(check string) "name" "purchase" u.A.u_name;
  Alcotest.(check int) "affects per arg" 2 (List.length u.A.u_affects);
  Alcotest.(check int) "depends per arg" 2 (List.length u.A.u_depends);
  let q =
    Spec.query ~name:"lookup"
      ~depends:(fun _ -> [ ("c", { Bounds.weak with Bounds.st = 1.0 }) ])
      ~read:(fun _ _ -> Tact_store.Value.Nil)
      ()
  in
  let uq = A.of_query q ~args:[ () ] in
  Alcotest.(check string) "query name" "lookup" uq.A.u_name;
  Alcotest.(check int) "query affects nothing" 0 (List.length uq.A.u_affects);
  Alcotest.(check int) "query depends" 1 (List.length uq.A.u_depends)

(* --- the guard hook ---------------------------------------------------- *)

let test_guard_rejects () =
  (* Malformed proportional weights pass Config.validate (which does not
     inspect the policy) but are a TA003 error — only the guard catches it. *)
  let bad =
    { good_config with
      Config.budget_policy = Tact_protocols.Budget.Proportional [| 1.0 |]
    }
  in
  (match Config.validate ~n:4 bad with
  | Ok () -> ()
  | Error m -> Alcotest.failf "validate unexpectedly rejects: %s" m);
  Guard.with_installed (fun () ->
      match System.create ~topology:(topo 4) ~config:bad () with
      | _ -> Alcotest.fail "create accepted a TA003 config"
      | exception Invalid_argument msg ->
        let mentions sub =
          let n = String.length sub in
          let found = ref false in
          for k = 0 to String.length msg - n do
            if String.sub msg k n = sub then found := true
          done;
          !found
        in
        Alcotest.(check bool) "names the code" true (mentions "TA003");
        Alcotest.(check bool) "names the subject" true (mentions "budget_policy"));
  (* Uninstalled again: the same config passes create. *)
  ignore (System.create ~topology:(topo 4) ~config:bad ())

let test_guard_accepts () =
  Guard.with_installed (fun () ->
      let sys = System.create ~topology:(topo 4) ~config:good_config () in
      System.run ~until:1.0 sys)

let test_experiments_clean () =
  (* Every registered experiment builds its systems through System.create;
     under the guard an analyzer error would abort the run. *)
  Guard.with_installed (fun () ->
      List.iter
        (fun (e : Tact_experiments.Registry.entry) ->
          ignore (e.Tact_experiments.Registry.run ~quick:true ()))
        Tact_experiments.Registry.all)

let suite =
  [
    Alcotest.test_case "clean baseline" `Quick test_clean_baseline;
    Alcotest.test_case "TA001 invalid bound" `Quick test_ta001;
    Alcotest.test_case "TA002 duplicate conit" `Quick test_ta002;
    Alcotest.test_case "TA003 budget weights" `Quick test_ta003;
    Alcotest.test_case "TA004 gossip plan" `Quick test_ta004;
    Alcotest.test_case "TA005 zero baseline" `Quick test_ta005;
    Alcotest.test_case "TA006 st vs anti-entropy" `Quick test_ta006;
    Alcotest.test_case "TA007 st without anti-entropy" `Quick test_ta007;
    Alcotest.test_case "TA008 st vs rtt" `Quick test_ta008;
    Alcotest.test_case "TA009 oe vs stability" `Quick test_ta009;
    Alcotest.test_case "TA010 unconstrained conit" `Quick test_ta010;
    Alcotest.test_case "TA011 unenforceable ne" `Quick test_ta011;
    Alcotest.test_case "TA012 oe vs oweight" `Quick test_ta012;
    Alcotest.test_case "TA013 never affected" `Quick test_ta013;
    Alcotest.test_case "TA014 never depended" `Quick test_ta014;
    Alcotest.test_case "TA015 undeclared conit" `Quick test_ta015;
    Alcotest.test_case "TA016 invalid weight" `Quick test_ta016;
    Alcotest.test_case "code table" `Quick test_codes_table;
    Alcotest.test_case "spec adapters" `Quick test_of_op_class;
    Alcotest.test_case "guard rejects errors" `Quick test_guard_rejects;
    Alcotest.test_case "guard accepts clean" `Quick test_guard_accepts;
    Alcotest.test_case "experiments clean" `Slow test_experiments_clean;
  ]
