(* Batched anti-entropy: the Frame allocator, the Batch wire codec (delta and
   snapshot-fallback payloads), and the differential guarantee that Batched
   sync is observationally identical to Per_write — same final databases and
   same oracle verdicts, including under nemesis loss and duplication. *)

open Tact_sim
open Tact_store
open Tact_replica

let unit_w conit = { Write.conit; nweight = 1.0; oweight = 1.0 }

let mk ~origin ~seq ~t =
  Write.make ~id:{ origin; seq } ~accept_time:t
    ~op:(Op.Add ("x", 1.0))
    ~affects:[ unit_w "c" ]

(* --- Frame allocator --------------------------------------------------- *)

let test_frame_reserve () =
  let f = Codec.Frame.create ~initial:16 () in
  Alcotest.(check int) "fresh length" 0 (Codec.Frame.length f);
  Alcotest.(check int) "one allocation at birth" 1 (Codec.Frame.allocations f);
  let o1 = Codec.Frame.reserve f 4 in
  let o2 = Codec.Frame.reserve f 8 in
  Alcotest.(check int) "first offset" 0 o1;
  Alcotest.(check int) "offsets are sequential" 4 o2;
  Alcotest.(check int) "length tracks reserves" 12 (Codec.Frame.length f);
  Alcotest.(check int) "no growth within capacity" 1 (Codec.Frame.allocations f)

let test_frame_growth_and_reuse () =
  let f = Codec.Frame.create ~initial:8 () in
  ignore (Codec.Frame.reserve f 20);
  Alcotest.(check bool) "arena grew" true (Codec.Frame.capacity f >= 20);
  Alcotest.(check int) "growth counted" 2 (Codec.Frame.allocations f);
  let cap = Codec.Frame.capacity f in
  Codec.Frame.clear f;
  Alcotest.(check int) "clear resets length" 0 (Codec.Frame.length f);
  Alcotest.(check int) "clear retains capacity" cap (Codec.Frame.capacity f);
  Codec.put_string f "hello";
  Alcotest.(check int) "reuse allocates nothing" 2 (Codec.Frame.allocations f);
  Alcotest.(check string) "contents round-trip" "hello"
    (Codec.get_string (Codec.cursor (Codec.Frame.contents f)))

let test_frame_preallocate () =
  let f = Codec.Frame.create ~initial:8 () in
  Codec.Frame.preallocate f 1024;
  Alcotest.(check int) "length unchanged" 0 (Codec.Frame.length f);
  Alcotest.(check int) "one growth for the whole batch" 2
    (Codec.Frame.allocations f);
  for i = 1 to 100 do
    Codec.put_int f i
  done;
  Alcotest.(check int) "puts within preallocation are alloc-free" 2
    (Codec.Frame.allocations f);
  Alcotest.(check int) "all puts landed" 800 (Codec.Frame.length f)

(* --- Batch wire format ------------------------------------------------- *)

let sample_batch ?(kind = Batch.Push) ?(shard = 0) payload =
  let vector = Version_vector.create 3 in
  Version_vector.set vector 0 4;
  Version_vector.set vector 2 7;
  {
    Batch.from = 1;
    shard;
    kind;
    vector;
    cover = [| 1.5; 2.25; 0.0 |];
    csn_start = 2;
    csn = [ { Write.origin = 0; seq = 3 }; { Write.origin = 2; seq = 1 } ];
    rate = 0.75;
    payload;
  }

let check_roundtrip name b =
  let s = Batch.to_string b in
  Alcotest.(check int)
    (name ^ ": byte_size is exact")
    (String.length s) (Batch.byte_size b);
  let b' = Batch.of_string s in
  Alcotest.(check int) (name ^ ": from") b.Batch.from b'.Batch.from;
  Alcotest.(check int) (name ^ ": shard") b.Batch.shard b'.Batch.shard;
  Alcotest.(check bool)
    (name ^ ": kind")
    true
    (b.Batch.kind = b'.Batch.kind);
  Alcotest.(check bool)
    (name ^ ": vector")
    true
    (Version_vector.equal b.Batch.vector b'.Batch.vector);
  Alcotest.(check bool)
    (name ^ ": cover")
    true
    (b.Batch.cover = b'.Batch.cover);
  Alcotest.(check int) (name ^ ": csn_start") b.Batch.csn_start b'.Batch.csn_start;
  Alcotest.(check bool) (name ^ ": csn") true (b.Batch.csn = b'.Batch.csn);
  Alcotest.(check bool)
    (name ^ ": rate")
    true
    (Float.equal b.Batch.rate b'.Batch.rate);
  (match (b.Batch.payload, b'.Batch.payload) with
  | Batch.Delta ws, Batch.Delta ws' ->
    Alcotest.(check (list string))
      (name ^ ": delta writes")
      (List.map Codec.write_to_string ws)
      (List.map Codec.write_to_string ws')
  | Batch.Full (snap, ws), Batch.Full (snap', ws') ->
    Alcotest.(check string)
      (name ^ ": snapshot payload")
      (Codec.snapshot_to_string snap)
      (Codec.snapshot_to_string snap');
    Alcotest.(check (list string))
      (name ^ ": retained tail")
      (List.map Codec.write_to_string ws)
      (List.map Codec.write_to_string ws')
  | _ -> Alcotest.fail (name ^ ": payload shape changed"));
  b'

let test_batch_roundtrip_delta () =
  let writes = [ mk ~origin:0 ~seq:4 ~t:1.0; mk ~origin:2 ~seq:7 ~t:2.0 ] in
  let b = sample_batch ~kind:(Batch.Pull_reply 9) ~shard:3 (Batch.Delta writes) in
  ignore (check_roundtrip "delta" b);
  (* Header-only decode agrees with the full decode. *)
  let h = Batch.decode_header (Batch.to_string b) in
  Alcotest.(check int) "header from" 1 h.Batch.h_from;
  Alcotest.(check int) "header shard" 3 h.Batch.h_shard;
  Alcotest.(check bool) "header kind" true (h.Batch.h_kind = Batch.Pull_reply 9);
  Alcotest.(check int) "header csn window" 2 h.Batch.h_csn_start;
  Alcotest.(check bool) "header payload tag" true (h.Batch.h_payload = `Delta);
  Alcotest.(check bool)
    "header ranges advertise origins" true
    (h.Batch.h_ranges = [ (0, 4, 4); (2, 7, 7) ])

let test_batch_ranges () =
  let writes =
    [
      mk ~origin:3 ~seq:5 ~t:1.0;
      mk ~origin:1 ~seq:2 ~t:2.0;
      mk ~origin:3 ~seq:6 ~t:3.0;
      mk ~origin:3 ~seq:7 ~t:4.0;
      mk ~origin:1 ~seq:3 ~t:5.0;
    ]
  in
  let b = sample_batch (Batch.Delta writes) in
  Alcotest.(check bool)
    "ranges sorted by origin, min..max" true
    (Batch.ranges b = [ (1, 2, 3); (3, 5, 7) ])

let test_batch_rejects_garbage () =
  let b = sample_batch (Batch.Delta [ mk ~origin:0 ~seq:4 ~t:1.0 ]) in
  let s = Batch.to_string b in
  let trailing = s ^ "x" in
  Alcotest.(check bool) "trailing garbage rejected" true
    (try
       ignore (Batch.of_string trailing);
       false
     with Codec.Malformed _ -> true);
  let truncated = String.sub s 0 (String.length s - 3) in
  Alcotest.(check bool) "truncation rejected" true
    (try
       ignore (Batch.of_string truncated);
       false
     with Codec.Malformed _ -> true);
  Alcotest.(check bool) "bad magic rejected" true
    (try
       ignore (Batch.of_string ("\x00" ^ String.sub s 1 (String.length s - 1)));
       false
     with Codec.Malformed _ -> true)

(* Satellite: the planner falls back to a snapshot frame exactly when the
   peer's vector is below the truncation horizon, and that frame round-trips
   with an exact byte_size. *)
let test_plan_snapshot_fallback () =
  let log = Wlog.create ~replicas:2 ~initial:[] in
  for seq = 1 to 10 do
    ignore (Wlog.accept log (mk ~origin:0 ~seq ~t:(float_of_int seq)))
  done;
  ignore (Wlog.commit_stable log ~cover:[| infinity; infinity |]);
  ignore (Wlog.truncate log ~keep:3);
  (* A peer that has the retained prefix gets a delta... *)
  let current = Version_vector.create 2 in
  Version_vector.set current 0 8;
  Batch.plan ~log ~peer_vector:current (fun payload ->
      match payload with
      | Batch.Delta ws ->
        Alcotest.(check int) "delta carries the gap" 2 (List.length ws)
      | Batch.Full _ -> Alcotest.fail "serveable peer got a snapshot");
  (* ...a peer below the truncation horizon gets the snapshot fallback. *)
  let behind = Version_vector.create 2 in
  Version_vector.set behind 0 2;
  Batch.plan ~log ~peer_vector:behind (fun payload ->
      match payload with
      | Batch.Delta _ -> Alcotest.fail "lagging peer got an unserveable delta"
      | Batch.Full (snap, tail) ->
        Alcotest.(check int) "snapshot covers the committed prefix" 10
          snap.Wlog.snap_ncommitted;
        Alcotest.(check int) "no tail past the snapshot" 0 (List.length tail);
        let b = sample_batch (Batch.Full (snap, tail)) in
        ignore (check_roundtrip "snapshot fallback" b);
        let h = Batch.decode_header (Batch.to_string b) in
        Alcotest.(check bool) "header says full" true (h.Batch.h_payload = `Full))

(* --- Differential: Batched vs Per_write -------------------------------- *)

let batched c = { c with Config.sync = Config.Batched; batch_flush = 0.02 }

(* The same deterministic workload under both sync modes: identical final
   databases on every replica, with far fewer messages on the wire.  The
   workload is bursty under a tight NE bound, so nearly every write forces
   budget pushes to every peer — the per-write transfer flood that batching
   collapses into one frame per peer per flush window. *)
let run_workload config =
  let topology = Topology.uniform ~n:4 ~latency:0.03 ~bandwidth:1e8 in
  let sys = System.create ~seed:11 ~jitter:0.05 ~topology ~config () in
  let engine = System.engine sys in
  for burst = 0 to 7 do
    for k = 1 to 15 do
      Engine.schedule engine
        ~delay:((0.5 *. float_of_int burst) +. (0.002 *. float_of_int k))
        (fun () ->
          Replica.submit_write
            (System.replica sys (burst mod 4))
            ~deps:[]
            ~affects:[ unit_w "c" ]
            ~op:(Op.Add ("x", float_of_int k))
            ~k:ignore)
    done
  done;
  System.run ~until:30.0 sys;
  Alcotest.(check bool) "run converged" true (System.converged sys);
  sys

let test_differential_clean () =
  let config =
    {
      Config.default with
      Config.conits = [ Tact_core.Conit.declare ~ne_bound:4.0 "c" ];
      Config.antientropy_period = Some 0.4;
    }
  in
  let pw = run_workload config in
  let bt = run_workload (batched config) in
  for i = 0 to 3 do
    Alcotest.(check bool)
      (Printf.sprintf "replica %d database identical" i)
      true
      (Db.equal (Replica.db (System.replica pw i)) (Replica.db (System.replica bt i)))
  done;
  Alcotest.(check int) "same committed count"
    (Wlog.committed_count (Replica.log (System.replica pw 0)))
    (Wlog.committed_count (Replica.log (System.replica bt 0)));
  let spw = System.traffic pw and sbt = System.traffic bt in
  Alcotest.(check bool) "batched sends fewer messages" true
    (sbt.Net.messages < spw.Net.messages);
  Alcotest.(check bool) "batched frames were coalesced" true
    ((System.total_stats bt).Replica.batches > 0);
  Alcotest.(check bool) "peak frame beats peak transfer" true
    (sbt.Net.max_message >= spw.Net.max_message)

(* Under message loss the two modes must still converge to the same state
   (ack-driven re-dirtying recovers dropped frames). *)
let test_differential_lossy () =
  let config =
    { Config.default with Config.antientropy_period = Some 0.4 }
  in
  let run config =
    let topology = Topology.uniform ~n:3 ~latency:0.03 ~bandwidth:1e8 in
    let sys = System.create ~seed:7 ~jitter:0.0 ~loss:0.25 ~topology ~config () in
    let engine = System.engine sys in
    for k = 1 to 20 do
      Engine.schedule engine
        ~delay:(0.3 *. float_of_int k)
        (fun () ->
          Replica.submit_write
            (System.replica sys (k mod 3))
            ~deps:[]
            ~affects:[ unit_w "c" ]
            ~op:(Op.Add ("x", float_of_int k))
            ~k:ignore)
    done;
    System.run ~until:200.0 sys;
    Alcotest.(check bool) "lossy run converged" true (System.converged sys);
    sys
  in
  let pw = run config and bt = run (batched config) in
  Alcotest.(check bool) "dropped messages in both" true
    ((System.traffic pw).Net.dropped > 0 && (System.traffic bt).Net.dropped > 0);
  Alcotest.(check bool) "same final database despite loss" true
    (Db.equal (Replica.db (System.replica pw 0)) (Replica.db (System.replica bt 0)))

(* Nemesis differential: sampled plans under sampled fault schedules (plus a
   forced loss+duplication schedule) produce identical oracle verdicts in
   both modes, and — under Stability commitment, where the committed order is
   canonical — identical final state fingerprints.  Duplication in particular
   proves a re-delivered frame cannot double-apply. *)
let test_differential_nemesis () =
  let open Tact_nemesis in
  for seed = 0 to 5 do
    let g = Tact_util.Prng.create ~seed in
    let fault_rng = Tact_util.Prng.split g in
    let p = Sample.plan ~seed in
    let sampled = Sample.faults fault_rng p in
    let forced =
      {
        Fault.events =
          [
            { Fault.at = 0.5; action = Fault.Global_loss { rate = 0.2; salt = 3 } };
            { Fault.at = 0.75; action = Fault.Duplication { rate = 0.3; salt = 9 } };
          ];
        quiet_after = p.Sample.quiet_after;
      }
    in
    List.iter
      (fun schedule ->
        let pw = Runner.execute p schedule in
        let bt = Runner.execute ~mutate:batched p schedule in
        Alcotest.(check (list string))
          (Printf.sprintf "seed %d: identical oracle verdicts" seed)
          pw.Runner.violations bt.Runner.violations;
        (* Sampled plans are mostly gossip-paced (one frame per tick in both
           modes), so the count can tie; the strict reduction is asserted on
           the push-flood workload above and measured by the bench. *)
        Alcotest.(check bool)
          (Printf.sprintf "seed %d: batched sends no more messages" seed)
          true
          (bt.Runner.messages <= pw.Runner.messages);
        match p.Sample.config.Config.commit_scheme with
        | Config.Stability ->
          Alcotest.(check bool)
            (Printf.sprintf "seed %d: identical state fingerprint" seed)
            true
            (Int64.equal pw.Runner.fingerprint bt.Runner.fingerprint)
        | Config.Primary _ -> ())
      [ sampled; forced ]
  done

(* Duplicated frames must not double-apply: a duplication-only batched run
   lands on the same fingerprint as the duplication-free batched run. *)
let test_duplication_no_double_apply () =
  let open Tact_nemesis in
  let p = Sample.plan ~seed:2 in
  (match p.Sample.config.Config.commit_scheme with
  | Config.Stability -> ()
  | Config.Primary _ -> Alcotest.fail "seed 2 expected to sample Stability");
  let clean = { Fault.events = []; quiet_after = p.Sample.quiet_after } in
  let dup =
    {
      Fault.events =
        [ { Fault.at = 0.25; action = Fault.Duplication { rate = 0.5; salt = 17 } } ];
      quiet_after = p.Sample.quiet_after;
    }
  in
  let a = Runner.execute ~mutate:batched p clean in
  let b = Runner.execute ~mutate:batched p dup in
  Alcotest.(check (list string)) "duplication run clean" [] b.Runner.violations;
  Alcotest.(check bool) "duplicates do not double-apply" true
    (Int64.equal a.Runner.fingerprint b.Runner.fingerprint)

let suite =
  [
    Alcotest.test_case "frame reserve offsets" `Quick test_frame_reserve;
    Alcotest.test_case "frame growth and reuse" `Quick test_frame_growth_and_reuse;
    Alcotest.test_case "frame preallocate" `Quick test_frame_preallocate;
    Alcotest.test_case "batch round-trip (delta)" `Quick test_batch_roundtrip_delta;
    Alcotest.test_case "batch origin ranges" `Quick test_batch_ranges;
    Alcotest.test_case "batch rejects garbage" `Quick test_batch_rejects_garbage;
    Alcotest.test_case "planner snapshot fallback" `Quick test_plan_snapshot_fallback;
    Alcotest.test_case "differential: clean workload" `Quick test_differential_clean;
    Alcotest.test_case "differential: lossy network" `Quick test_differential_lossy;
    Alcotest.test_case "differential: nemesis schedules" `Quick
      test_differential_nemesis;
    Alcotest.test_case "duplication cannot double-apply" `Quick
      test_duplication_no_double_apply;
  ]
