(* The TRANSPORT seam and its hardened TCP backend.

   - table-driven supervisor state-machine tests (backoff sequencing with a
     seeded PRNG, retry exhaustion and parking, half-open detection,
     connect deadlines, benign races)
   - decode fuzz: mutated and truncated valid frames through the total
     Batch/Wire/Client decoders — typed errors, never an exception
   - Config.validate diagnostics for the transport knobs
   - Faulty decorator: partition/loss/duplication semantics and seeded
     determinism
   - loopback TCP integration on a single event loop: delivery, parking
     while a peer is down, reconnect-with-resync, poisoning of hostile
     connections, and fd-leak-free repeated create/destroy
   - an in-process 3-daemon nemesis run: a rolling partition plus delay
     spike (lib/nemesis/gen.ml) against live sockets through the
     fault-injecting decorator, with client traffic throughout and a
     convergence + clean-accounting check after the heal
   - System.run teardown: close is idempotent and runs even when a replica
     raises mid-run *)

open Tact_util
open Tact_store
open Tact_core
open Tact_replica
open Tact_transport
module Sup = Supervisor

let feq a b = Float.abs (a -. b) < 1e-9

let knobs ?(connect_timeout = 1.0) ?(io_timeout = 0.5) ?(backoff_base = 0.1)
    ?(backoff_cap = 5.0) ?(retry_limit = 0) ?(half_open_after = 1.0) () =
  {
    Sup.connect_timeout;
    io_timeout;
    backoff_base;
    backoff_cap;
    retry_limit;
    half_open_after;
  }

(* --- Supervisor: table-driven state machine --------------------------- *)

let down_delay ~now = function
  | Sup.Down { until; _ } -> until -. now
  | st -> Alcotest.failf "expected Down, got %s" (Sup.to_string st)

let test_sup_dial_cycle () =
  let k = knobs () in
  let rng = Prng.create ~seed:1 in
  (* Fresh supervisor dials on the first tick. *)
  let st, acts = Sup.step k rng Sup.initial Sup.Tick ~now:0.0 in
  Alcotest.(check bool) "dialing" true (match st with Sup.Dialing _ -> true | _ -> false);
  Alcotest.(check bool) "dial action" true (acts = [ Sup.Dial ]);
  (* Success: up, and every transition into Up resyncs. *)
  let st, acts = Sup.step k rng st Sup.Dial_ok ~now:0.01 in
  Alcotest.(check bool) "up" true (Sup.is_up st);
  Alcotest.(check bool) "resync on up" true (acts = [ Sup.Resync ]);
  (* Io failure: hang up and back off. *)
  let st, acts = Sup.step k rng st Sup.Io_failed ~now:0.5 in
  Alcotest.(check bool) "down again" true
    (match st with Sup.Down _ -> true | _ -> false);
  Alcotest.(check bool) "hang up" true (acts = [ Sup.Hang_up ]);
  (* First retry delay is exactly the base. *)
  Alcotest.(check bool) "first delay = base" true
    (feq (down_delay ~now:0.5 st) k.Sup.backoff_base)

let test_sup_backoff_sequence () =
  (* Consecutive dial failures follow the decorrelated-jitter schedule:
     d1 = base, d_{i+1} uniform in [base, min cap (3 d_i)] — so the delays
     stay in range and the range itself is allowed to grow. *)
  let k = knobs ~backoff_base:0.1 ~backoff_cap:2.0 () in
  let rng = Prng.create ~seed:7 in
  let rec fails st now acc = function
    | 0 -> List.rev acc
    | i ->
      let st, _ = Sup.step k rng st Sup.Tick ~now in
      (match st with
      | Sup.Dialing _ -> ()
      | _ -> Alcotest.failf "expected Dialing, got %s" (Sup.to_string st));
      let st, _ = Sup.step k rng st Sup.Dial_failed ~now in
      let d = down_delay ~now st in
      fails st (now +. d +. 0.001) (d :: acc) (i - 1)
  in
  let delays = fails Sup.initial 0.0 [] 8 in
  (match delays with
  | d1 :: rest ->
    Alcotest.(check bool) "d1 = base" true (feq d1 k.Sup.backoff_base);
    let prev = ref d1 in
    List.iter
      (fun d ->
        Alcotest.(check bool) "d >= base" true (d >= k.Sup.backoff_base -. 1e-9);
        Alcotest.(check bool) "d <= min cap (3 prev)" true
          (d <= Float.min k.Sup.backoff_cap (Float.max k.Sup.backoff_base (3.0 *. !prev)) +. 1e-9);
        prev := d)
      rest
  | [] -> Alcotest.fail "no delays");
  (* The schedule is a pure function of the seed. *)
  let delays' =
    let rng = Prng.create ~seed:7 in
    let rec go st now acc = function
      | 0 -> List.rev acc
      | i ->
        let st, _ = Sup.step k rng st Sup.Tick ~now in
        let st, _ = Sup.step k rng st Sup.Dial_failed ~now in
        let d = down_delay ~now st in
        go st (now +. d +. 0.001) (d :: acc) (i - 1)
    in
    go Sup.initial 0.0 [] 8
  in
  Alcotest.(check bool) "seeded determinism" true
    (List.for_all2 feq delays delays')

let test_sup_retry_exhaustion_parks () =
  let k = knobs ~retry_limit:3 ~backoff_base:0.05 ~backoff_cap:0.2 () in
  let rng = Prng.create ~seed:3 in
  let st = ref Sup.initial and now = ref 0.0 in
  let tick () =
    let s, a = Sup.step k rng !st Sup.Tick ~now:!now in
    st := s;
    a
  in
  let fail () =
    let s, a = Sup.step k rng !st Sup.Dial_failed ~now:!now in
    st := s;
    a
  in
  for _ = 1 to 3 do
    now := !now +. 0.3;
    ignore (tick ());
    ignore (fail ())
  done;
  Alcotest.(check bool) "parked after limit" true (Sup.is_parked !st);
  (* Parked absorbs stale results and ticks before the probe time... *)
  ignore (fail ());
  Alcotest.(check bool) "still parked" true (Sup.is_parked !st);
  Alcotest.(check bool) "no dial before probe_at" true (tick () = []);
  (* ...and probes once per backoff cap. *)
  now := !now +. k.Sup.backoff_cap +. 0.001;
  Alcotest.(check bool) "probe dial" true (tick () = [ Sup.Dial ]);
  let s, a = Sup.step k rng !st Sup.Dial_ok ~now:!now in
  Alcotest.(check bool) "recovers to up" true (Sup.is_up s);
  Alcotest.(check bool) "resync after park" true (a = [ Sup.Resync ])

let test_sup_half_open () =
  let k = knobs ~half_open_after:1.0 ~io_timeout:0.5 () in
  let rng = Prng.create ~seed:9 in
  let st = Sup.Up { last_rx = 0.0; probed = false } in
  (* Quiet but within the window: nothing. *)
  let st, acts = Sup.step k rng st Sup.Tick ~now:0.9 in
  Alcotest.(check bool) "no probe yet" true (acts = []);
  (* Past the window: suspect half-open, probe once. *)
  let st, acts = Sup.step k rng st Sup.Tick ~now:1.1 in
  Alcotest.(check bool) "probe" true (acts = [ Sup.Send_probe ]);
  let st, acts = Sup.step k rng st Sup.Tick ~now:1.2 in
  Alcotest.(check bool) "probe not repeated" true (acts = []);
  (* The ack refreshes the connection. *)
  let st, _ = Sup.step k rng st Sup.Rx ~now:1.3 in
  (match st with
  | Sup.Up { probed; last_rx } ->
    Alcotest.(check bool) "probe cleared" false probed;
    Alcotest.(check bool) "rx time" true (feq last_rx 1.3)
  | _ -> Alcotest.fail "expected Up");
  (* Silence through probe + io window: the connection is dead. *)
  let st, _ = Sup.step k rng st Sup.Tick ~now:2.4 in
  let st, acts = Sup.step k rng st Sup.Tick ~now:2.9 in
  Alcotest.(check bool) "hang up dead" true (acts = [ Sup.Hang_up ]);
  Alcotest.(check bool) "down after dead" true
    (match st with Sup.Down _ -> true | _ -> false)

let test_sup_connect_deadline () =
  let k = knobs ~connect_timeout:0.5 () in
  let rng = Prng.create ~seed:5 in
  let st, _ = Sup.step k rng Sup.initial Sup.Tick ~now:0.0 in
  (* Mid-dial ticks are quiet. *)
  let st, acts = Sup.step k rng st Sup.Tick ~now:0.3 in
  Alcotest.(check bool) "dial pending" true (acts = []);
  (* The deadline fires: hang up and back off. *)
  let st, acts = Sup.step k rng st Sup.Tick ~now:0.6 in
  Alcotest.(check bool) "deadline hangs up" true (acts = [ Sup.Hang_up ]);
  Alcotest.(check bool) "backs off" true
    (match st with Sup.Down _ -> true | _ -> false)

let test_sup_stale_events_absorbed () =
  let k = knobs () in
  let rng = Prng.create ~seed:11 in
  let up = Sup.Up { last_rx = 0.0; probed = false } in
  List.iter
    (fun ev ->
      let st, acts = Sup.step k rng up ev ~now:0.1 in
      Alcotest.(check bool) "up absorbs stale dial result" true
        (st = up && acts = []))
    [ Sup.Dial_ok; Sup.Dial_failed ];
  let dialing = Sup.Dialing { attempt = 1; deadline = 9.0; prev_delay = 0.0 } in
  List.iter
    (fun ev ->
      let st, acts = Sup.step k rng dialing ev ~now:0.1 in
      Alcotest.(check bool) "dialing absorbs rx/io" true (st = dialing && acts = []))
    [ Sup.Rx; Sup.Io_failed ];
  let parked = Sup.Parked { probe_at = 9.0 } in
  List.iter
    (fun ev ->
      let st, acts = Sup.step k rng parked ev ~now:0.1 in
      Alcotest.(check bool) "parked absorbs failures" true (st = parked && acts = []))
    [ Sup.Dial_failed; Sup.Io_failed ];
  (* Incoming traffic is never connection evidence — the peer's inbound
     socket is not our outbound one, and an Up state without a dialed
     socket would park frames forever.  While backing off it is absorbed;
     while parked it is host-liveness evidence, so the supervisor redials
     immediately instead of waiting out the probe interval. *)
  let down = Sup.Down { attempt = 1; prev_delay = 0.1; until = 9.0 } in
  let st, acts = Sup.step k rng down Sup.Rx ~now:0.1 in
  Alcotest.(check bool) "down + rx absorbed" true (st = down && acts = []);
  let st, acts = Sup.step k rng parked Sup.Rx ~now:0.1 in
  Alcotest.(check bool) "parked + rx -> immediate redial" true
    ((match st with Sup.Dialing { attempt = 1; _ } -> true | _ -> false)
    && acts = [ Sup.Dial ])

(* --- Decode hardening: fuzz over mutated valid frames ----------------- *)

let sample_write seq =
  Write.make ~id:{ Write.origin = 0; seq } ~accept_time:(0.1 *. float_of_int seq)
    ~op:(Op.Add ("x", 1.0))
    ~affects:[ { Write.conit = "c"; nweight = 1.0; oweight = 1.0 } ]

let sample_batch () =
  let vector = Version_vector.create 3 in
  Version_vector.set vector 0 2;
  {
    Batch.from = 0;
    shard = 0;
    kind = Batch.Push;
    vector;
    cover = [| 0.5; 0.25; 0.125 |];
    csn_start = 0;
    csn = [ { Write.origin = 0; seq = 1 } ];
    rate = 1.5;
    payload = Batch.Delta [ sample_write 1; sample_write 2 ];
  }

let sample_wire_msgs () =
  let vector = Version_vector.create 3 in
  Version_vector.set vector 1 4;
  [
    Wire.Transfer
      {
        from = 1;
        writes = [ sample_write 1 ];
        vector;
        cover = [| 0.0; 1.0; 2.0 |];
        csn_start = 0;
        csn = [];
        rate = 0.5;
        kind = `Push;
      };
    Wire.Pull_req { from = 2; vector; csn_known = 3; round = 1 };
    Wire.Ack { from = 0; vector; csn_known = 2 };
    Wire.Batch_frame (Batch.to_string (sample_batch ()));
  ]

(* Every mutation of a valid frame must come back as [Ok _] or
   [Error (Malformed _ | Too_large _)] — never an exception, which is what
   [guard] turns into a test failure. *)
let guard name f =
  match f () with
  | (_ : bool) -> ()
  | exception e ->
    Alcotest.failf "%s: decoder raised %s" name (Printexc.to_string e)

let fuzz_string name decode s =
  (* All truncations. *)
  for len = 0 to String.length s - 1 do
    guard name (fun () -> match decode (String.sub s 0 len) with Ok _ -> true | Error _ -> false)
  done;
  (* Single-byte corruptions at every offset, three values each. *)
  let b = Bytes.of_string s in
  for i = 0 to Bytes.length b - 1 do
    let orig = Bytes.get b i in
    List.iter
      (fun c ->
        Bytes.set b i c;
        let s' = Bytes.to_string b in
        guard name (fun () -> match decode s' with Ok _ -> true | Error _ -> false))
      [ '\x00'; '\xff'; Char.chr (Char.code orig lxor 0x40) ];
    Bytes.set b i orig
  done;
  (* Random multi-byte garbage. *)
  let rng = Prng.create ~seed:(Hashtbl.hash name) in
  for _ = 1 to 200 do
    let len = Prng.int rng 64 in
    let g = Bytes.init len (fun _ -> Char.chr (Prng.int rng 256)) in
    guard name (fun () ->
        match decode (Bytes.to_string g) with Ok _ -> true | Error _ -> false)
  done

let test_fuzz_batch_decode () =
  let s = Batch.to_string (sample_batch ()) in
  (match Batch.decode s with
  | Ok b -> Alcotest.(check int) "roundtrip from" 0 b.Batch.from
  | Error e -> Alcotest.failf "valid batch rejected: %s" (Transport.error_to_string e));
  fuzz_string "batch" Batch.decode s;
  fuzz_string "batch-header" Batch.decode_header_safe s

let test_fuzz_wire_decode () =
  List.iteri
    (fun i msg ->
      let s = Wire.to_string msg in
      (match Wire.decode s with
      | Ok _ -> ()
      | Error e ->
        Alcotest.failf "valid wire msg %d rejected: %s" i
          (Transport.error_to_string e));
      fuzz_string (Printf.sprintf "wire-%d" i) Wire.decode s)
    (sample_wire_msgs ())

let test_fuzz_client_decode () =
  let reqs =
    [
      Client.Submit
        { conit = "c"; nweight = 1.0; oweight = 0.5; op = Op.Add ("x", 2.0) };
      Client.Query { key = "x"; conit = "c"; bounds = Bounds.make ~ne:1.0 () };
      Client.Status;
    ]
  in
  List.iteri
    (fun i req ->
      let s = Client.request_to_string req in
      (* [request_to_string] is [encode_request] into a fresh arena. *)
      let f = Codec.Frame.create () in
      Client.encode_request f req;
      Alcotest.(check string) "encode_request agrees" s (Codec.Frame.contents f);
      (match Client.decode_request s with
      | Ok req' ->
        Alcotest.(check string) "request roundtrip"
          (Client.describe_request req) (Client.describe_request req')
      | Error e ->
        Alcotest.failf "valid request rejected: %s" (Transport.error_to_string e));
      fuzz_string (Printf.sprintf "client-req-%d" i) Client.decode_request s)
    reqs;
  let resps =
    [
      Client.Outcome (Op.Applied (Value.Float 2.0));
      Client.Outcome (Op.Conflict "busy");
      Client.Value (Value.List [ Value.Int 1; Value.Str "s" ]);
      Client.Status_r
        {
          Client.c_id = 1;
          c_n = 3;
          c_up = true;
          c_log_len = 10;
          c_pending = 0;
          c_malformed = 0;
          c_peers_up = 2;
          c_now = 1.5;
        };
      Client.Err "deadline";
    ]
  in
  List.iteri
    (fun i resp ->
      let s = Client.response_to_string resp in
      (match Client.decode_response s with
      | Ok resp' ->
        Alcotest.(check string) "response roundtrip"
          (Client.describe_response resp) (Client.describe_response resp')
      | Error e ->
        Alcotest.failf "valid response rejected: %s" (Transport.error_to_string e));
      fuzz_string (Printf.sprintf "client-resp-%d" i) Client.decode_response s)
    resps;
  (* Direction confusion is caught on the first byte. *)
  Alcotest.(check bool) "request decoder rejects responses" true
    (match Client.decode_request (Client.response_to_string (Client.Err "x")) with
    | Error (Transport.Malformed _) -> true
    | _ -> false)

let test_frame_header_bounds () =
  let hdr = Transport.encode_frame_header ~len:5 in
  Alcotest.(check int) "header size" Transport.frame_header_size (String.length hdr);
  let buf = Bytes.of_string (hdr ^ "hello") in
  (match Transport.decode_frame_header ~max_frame:1024 buf ~off:0 ~avail:(Bytes.length buf) with
  | Ok (Some 5) -> ()
  | _ -> Alcotest.fail "expected complete 5-byte frame");
  (* A frame over the bound is rejected from the header alone — before any
     allocation proportional to the announced length. *)
  let big = Bytes.of_string (Transport.encode_frame_header ~len:(1 lsl 29)) in
  (match Transport.decode_frame_header ~max_frame:1024 big ~off:0 ~avail:(Bytes.length big) with
  | Error (Transport.Too_large { limit = 1024; _ }) -> ()
  | _ -> Alcotest.fail "oversized frame accepted");
  (* A negative / garbage prefix is malformed, not a crash. *)
  let neg = Bytes.make 4 '\xff' in
  (match Transport.decode_frame_header ~max_frame:1024 neg ~off:0 ~avail:4 with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "garbage prefix accepted");
  (* put_frame writes exactly header ^ payload into an encode arena. *)
  let f = Codec.Frame.create () in
  Transport.put_frame f "hello";
  Alcotest.(check string) "put_frame framing" (hdr ^ "hello") (Codec.Frame.contents f);
  (* The taxonomy's retry split: transient errors are worth a reconnect,
     protocol violations are not. *)
  List.iter
    (fun e -> Alcotest.(check bool) (Transport.error_to_string e) true (Transport.is_transient e))
    [ Transport.Timeout "t"; Transport.Refused "r"; Transport.Reset "r"; Transport.Unreachable "u" ];
  List.iter
    (fun e ->
      Alcotest.(check bool) (Transport.error_to_string e) false (Transport.is_transient e))
    [ Transport.Closed "c"; Transport.Malformed "m"; Transport.Too_large { limit = 1; got = 2 } ]

(* --- Config.validate: transport knob diagnostics ---------------------- *)

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  n = 0 || go 0

let test_config_transport_knobs () =
  let base = Config.default in
  let expect_err field patch =
    let config = { base with Config.transport = patch base.Config.transport } in
    match Config.validate ~n:3 config with
    | Ok () -> Alcotest.failf "bad %s accepted" field
    | Error msg ->
      Alcotest.(check bool)
        (Printf.sprintf "%s diagnostic names the field (%s)" field msg)
        true
        (contains ~sub:field msg)
  in
  expect_err "connect_timeout" (fun k -> { k with Config.connect_timeout = 0.0 });
  expect_err "io_timeout" (fun k -> { k with Config.io_timeout = Float.nan });
  expect_err "backoff_base" (fun k -> { k with Config.backoff_base = -1.0 });
  expect_err "backoff_cap" (fun k -> { k with Config.backoff_cap = 0.01 });
  expect_err "retry_limit" (fun k -> { k with Config.retry_limit = -2 });
  expect_err "half_open_after" (fun k -> { k with Config.half_open_after = 0.0 });
  expect_err "max_frame" (fun k -> { k with Config.max_frame = 100 });
  expect_err "max_frame" (fun k -> { k with Config.max_frame = 1 lsl 31 });
  expect_err "listen_backlog" (fun k -> { k with Config.listen_backlog = 0 });
  expect_err "drain_timeout" (fun k -> { k with Config.drain_timeout = 0.0 });
  match Config.validate ~n:3 base with
  | Ok () -> ()
  | Error e -> Alcotest.failf "default config rejected: %s" e

(* --- Faulty: the nemesis decorator over injected closures ------------- *)

let run_faulty ~seed ~msgs =
  let delivered = ref [] in
  let timers = Queue.create () in
  let fy =
    Faulty.create ~self:0 ~n:3
      ~schedule:(fun ~delay:_ f -> Queue.push f timers)
      ~send:(fun ~dst payload ->
        delivered := (dst, payload) :: !delivered;
        Ok ())
      ()
  in
  Faulty.set_loss fy (Some (Prng.create ~seed, 0.3));
  Faulty.set_duplication fy (Some (Prng.create ~seed:(seed + 1), 0.2));
  for i = 1 to msgs do
    let dst = 1 + (i mod 2) in
    match Faulty.send fy ~dst (Printf.sprintf "m%d" i) with
    | Ok () -> ()
    | Error e -> Alcotest.failf "faulty send failed: %s" (Transport.error_to_string e)
  done;
  Queue.iter (fun f -> f ()) timers;
  (List.rev !delivered, Faulty.stats fy)

let test_faulty_deterministic () =
  let d1, s1 = run_faulty ~seed:42 ~msgs:200 in
  let d2, s2 = run_faulty ~seed:42 ~msgs:200 in
  Alcotest.(check bool) "same delivery sequence" true (d1 = d2);
  Alcotest.(check int) "same losses" s1.Faulty.f_dropped_loss s2.Faulty.f_dropped_loss;
  Alcotest.(check int) "same duplicates" s1.Faulty.f_duplicated s2.Faulty.f_duplicated;
  Alcotest.(check bool) "loss actually fired" true (s1.Faulty.f_dropped_loss > 0);
  Alcotest.(check bool) "duplication actually fired" true (s1.Faulty.f_duplicated > 0);
  let d3, _ = run_faulty ~seed:43 ~msgs:200 in
  Alcotest.(check bool) "different seed, different pattern" true (d1 <> d3)

let test_faulty_partitions () =
  let delivered = ref 0 in
  let fy =
    Faulty.create ~self:0 ~n:4
      ~schedule:(fun ~delay:_ f -> f ())
      ~send:(fun ~dst:_ _ -> incr delivered; Ok ())
      ()
  in
  let send dst = ignore (Faulty.send fy ~dst "m") in
  (* Symmetric cut 0|{1,2}: outgoing to both drops, 3 unaffected. *)
  Faulty.partition fy [ 0 ] [ 1; 2 ];
  send 1; send 2; send 3;
  Alcotest.(check int) "only uncut link delivers" 1 !delivered;
  Alcotest.(check bool) "partitioned observable" true (Faulty.partitioned fy ~dst:1);
  (* One-way: cuts only the listed direction from us. *)
  Faulty.heal fy;
  Faulty.partition_oneway fy [ 1 ] [ 0 ];
  delivered := 0;
  send 1;
  Alcotest.(check int) "reverse direction unaffected" 1 !delivered;
  Faulty.partition_oneway fy [ 0 ] [ 1 ];
  send 1;
  Alcotest.(check int) "forward direction cut" 1 !delivered;
  (* heal_between lifts both installs. *)
  Faulty.heal_between fy [ 0 ] [ 1 ];
  send 1;
  Alcotest.(check int) "healed" 2 !delivered;
  (* clear_all resets every knob. *)
  Faulty.set_loss fy (Some (Prng.create ~seed:1, 1.0));
  Faulty.set_delay_factor fy 10.0;
  Faulty.clear_all fy;
  delivered := 0;
  send 1;
  Alcotest.(check int) "clear_all lifts loss" 1 !delivered;
  Alcotest.(check bool) "bad dst typed error" true
    (match Faulty.send fy ~dst:9 "m" with
    | Error (Transport.Unreachable _) -> true
    | _ -> false)

(* --- Loopback TCP integration ----------------------------------------- *)

let fresh_ports n =
  let fds =
    List.init n (fun _ ->
        let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
        Unix.setsockopt fd Unix.SO_REUSEADDR true;
        Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_loopback, 0));
        fd)
  in
  let ports =
    List.map
      (fun fd ->
        match Unix.getsockname fd with
        | Unix.ADDR_INET (_, p) -> p
        | _ -> assert false)
      fds
  in
  List.iter Unix.close fds;
  ports

let loopback port = Unix.ADDR_INET (Unix.inet_addr_loopback, port)

let fast_knobs =
  {
    Config.default_transport with
    Config.connect_timeout = 2.0;
    io_timeout = 0.4;
    backoff_base = 0.01;
    backoff_cap = 0.08;
    half_open_after = 0.5;
  }

(* Pump one shared loop until [cond] holds or [deadline] (loop seconds). *)
let pump loop ~deadline cond =
  while (not (cond ())) && Loop.now loop < deadline do
    ignore (Loop.run_once ~max_wait:0.01 loop)
  done;
  cond ()

let test_tcp_loopback_delivery () =
  let ports = Array.of_list (fresh_ports 3) in
  let addrs = Array.map loopback ports in
  let loop = Loop.create () in
  let rng = Prng.create ~seed:5 in
  let mk self =
    Tcp.create ~loop ~self ~addrs ~knobs:fast_knobs ~rng:(Prng.split rng) ()
  in
  let ts = Array.init 3 mk in
  let got = Array.make 3 [] in
  Array.iteri
    (fun me t ->
      Tcp.set_handler t (fun ~src payload -> got.(me) <- (src, payload) :: got.(me)))
    ts;
  Array.iteri (fun i t -> Tcp.listen t ~addr:addrs.(i)) ts;
  Alcotest.(check int) "mesh size" 3 (Tcp.size ts.(0));
  Alcotest.(check int) "own id" 1 (Tcp.self ts.(1));
  let all_up () =
    Array.to_list ts
    |> List.for_all (fun t ->
           List.for_all
             (fun j -> j = Tcp.self t || Tcp.peer_up t j)
             [ 0; 1; 2 ])
  in
  Alcotest.(check bool) "mesh establishes" true (pump loop ~deadline:5.0 all_up);
  (* Every ordered pair exchanges a distinct payload. *)
  for i = 0 to 2 do
    for j = 0 to 2 do
      if i <> j then
        match Tcp.send ts.(i) ~dst:j (Printf.sprintf "%d->%d" i j) with
        | Ok () -> ()
        | Error e -> Alcotest.failf "send: %s" (Transport.error_to_string e)
    done
  done;
  let all_received () = Array.for_all (fun l -> List.length l = 2) got in
  Alcotest.(check bool) "all frames delivered" true
    (pump loop ~deadline:5.0 all_received);
  for me = 0 to 2 do
    List.iter
      (fun (src, payload) ->
        Alcotest.(check string) "payload intact"
          (Printf.sprintf "%d->%d" src me)
          payload)
      got.(me)
  done;
  (* Typed errors at the edges. *)
  Alcotest.(check bool) "self unreachable" true
    (match Tcp.send ts.(0) ~dst:0 "x" with Error (Transport.Unreachable _) -> true | _ -> false);
  Alcotest.(check bool) "oversize rejected" true
    (match Tcp.send ts.(0) ~dst:1 (String.make (fast_knobs.Config.max_frame + 1) 'a') with
    | Error (Transport.Too_large _) -> true
    | _ -> false);
  Array.iter Tcp.close ts;
  Alcotest.(check bool) "send after close" true
    (match Tcp.send ts.(0) ~dst:1 "x" with Error (Transport.Closed _) -> true | _ -> false);
  Tcp.close ts.(0) (* idempotent *)

let test_tcp_park_and_reconnect_resync () =
  let ports = Array.of_list (fresh_ports 2) in
  let addrs = Array.map loopback ports in
  let loop = Loop.create () in
  let rng = Prng.create ~seed:6 in
  let t0 = Tcp.create ~loop ~self:0 ~addrs ~knobs:fast_knobs ~rng:(Prng.split rng) () in
  let t1 = ref (Tcp.create ~loop ~self:1 ~addrs ~knobs:fast_knobs ~rng:(Prng.split rng) ()) in
  let got1 = ref [] in
  let resyncs = ref [] in
  Tcp.set_handler !t1 (fun ~src payload -> got1 := (src, payload) :: !got1);
  Tcp.set_on_peer_up t0 (fun peer -> resyncs := peer :: !resyncs);
  Tcp.listen t0 ~addr:addrs.(0);
  Tcp.listen !t1 ~addr:addrs.(1);
  Alcotest.(check bool) "pair up" true
    (pump loop ~deadline:5.0 (fun () -> Tcp.peer_up t0 1 && Tcp.peer_up !t1 0));
  Alcotest.(check bool) "initial resync fired" true (List.mem 1 !resyncs);
  (* Kill peer 1 entirely; 0 detects the death and parks traffic. *)
  Tcp.close !t1;
  Alcotest.(check bool) "death detected" true
    (pump loop ~deadline:5.0 (fun () -> not (Tcp.peer_up t0 1)));
  Alcotest.(check bool) "supervisor no longer up" false
    (Sup.is_up (Tcp.peer_state t0 1));
  (match Tcp.send t0 ~dst:1 "while-down" with
  | Ok () -> ()
  | Error e -> Alcotest.failf "park send: %s" (Transport.error_to_string e));
  Alcotest.(check bool) "frame parked, not dropped" true
    ((Tcp.stats t0).Tcp.parked_frames >= 1);
  (* Peer restarts on the same address: the supervisor reconnects, replays
     the parked frame, and fires the resync hook again. *)
  resyncs := [];
  got1 := [];
  t1 := Tcp.create ~loop ~self:1 ~addrs ~knobs:fast_knobs ~rng:(Prng.split rng) ();
  Tcp.set_handler !t1 (fun ~src payload -> got1 := (src, payload) :: !got1);
  Tcp.listen !t1 ~addr:addrs.(1);
  Alcotest.(check bool) "reconnects" true
    (pump loop ~deadline:5.0 (fun () -> Tcp.peer_up t0 1));
  Alcotest.(check bool) "parked frame replayed" true
    (pump loop ~deadline:5.0 (fun () -> List.mem (0, "while-down") !got1));
  Alcotest.(check bool) "resync on reconnect" true (List.mem 1 !resyncs);
  Alcotest.(check bool) "reconnect counted" true ((Tcp.stats t0).Tcp.reconnects >= 1);
  Tcp.close t0;
  Tcp.close !t1

let test_tcp_parks_after_retry_budget () =
  (* Peer 1's address is dead for good: after [retry_limit] refused dials
     the supervisor parks the peer — outgoing traffic is retained, not
     dropped, and the peer is probed once per backoff cap instead of being
     hammered. *)
  let ports = Array.of_list (fresh_ports 2) in
  let addrs = Array.map loopback ports in
  let loop = Loop.create () in
  let parky = { fast_knobs with Config.retry_limit = 2; connect_timeout = 0.3 } in
  let t0 =
    Tcp.create ~loop ~self:0 ~addrs ~knobs:parky ~rng:(Prng.create ~seed:17) ()
  in
  Tcp.listen t0 ~addr:addrs.(0);
  Alcotest.(check bool) "parks after budget" true
    (pump loop ~deadline:5.0 (fun () -> Tcp.peer_parked t0 1));
  (match Tcp.send t0 ~dst:1 "still-retained" with
  | Ok () -> ()
  | Error e -> Alcotest.failf "parked send: %s" (Transport.error_to_string e));
  let st = Tcp.stats t0 in
  Alcotest.(check bool) "parked frame retained" true (st.Tcp.parked_frames >= 1);
  Alcotest.(check int) "nothing dropped" 0 st.Tcp.parked_drops;
  Tcp.close t0

let test_tcp_poisons_hostile_bytes () =
  let ports = Array.of_list (fresh_ports 2) in
  let addrs = Array.map loopback ports in
  let loop = Loop.create () in
  let rng = Prng.create ~seed:8 in
  let t0 = Tcp.create ~loop ~self:0 ~addrs ~knobs:fast_knobs ~rng:(Prng.split rng) () in
  Tcp.listen t0 ~addr:addrs.(0);
  (* A stranger speaking garbage instead of the hello. *)
  let hostile = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.connect hostile addrs.(0);
  let garbage = "GETGARBAGEGARBAGE" in
  ignore (Unix.write_substring hostile garbage 0 (String.length garbage));
  Alcotest.(check bool) "hostile hello poisoned" true
    (pump loop ~deadline:5.0 (fun () -> (Tcp.stats t0).Tcp.poisoned >= 1));
  (try Unix.close hostile with Unix.Unix_error _ -> ());
  (* A correct hello followed by an oversized frame announcement. *)
  let sneaky = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.connect sneaky addrs.(0);
  let hello = Bytes.create 16 in
  Bytes.blit_string "TACTPEER" 0 hello 0 8;
  Bytes.set_int64_be hello 8 1L;
  ignore (Unix.write sneaky hello 0 16);
  let huge = Transport.encode_frame_header ~len:(1 lsl 29) in
  ignore (Unix.write_substring sneaky huge 0 (String.length huge));
  Alcotest.(check bool) "oversize announcement poisoned" true
    (pump loop ~deadline:5.0 (fun () -> (Tcp.stats t0).Tcp.poisoned >= 2));
  (try Unix.close sneaky with Unix.Unix_error _ -> ());
  Tcp.close t0

let count_fds () = Array.length (Sys.readdir "/proc/self/fd")

let test_tcp_no_fd_leak () =
  (* Warm up any lazy fds (stdio, etc.) before baselining. *)
  let ports = Array.of_list (fresh_ports 2) in
  ignore ports;
  let baseline = count_fds () in
  for round = 1 to 5 do
    let ports = Array.of_list (fresh_ports 2) in
    let addrs = Array.map loopback ports in
    let loop = Loop.create () in
    let rng = Prng.create ~seed:round in
    let t0 = Tcp.create ~loop ~self:0 ~addrs ~knobs:fast_knobs ~rng:(Prng.split rng) () in
    let t1 = Tcp.create ~loop ~self:1 ~addrs ~knobs:fast_knobs ~rng:(Prng.split rng) () in
    let got = ref false in
    Tcp.set_handler t1 (fun ~src:_ _ -> got := true);
    Tcp.listen t0 ~addr:addrs.(0);
    Tcp.listen t1 ~addr:addrs.(1);
    ignore (pump loop ~deadline:5.0 (fun () -> Tcp.peer_up t0 1));
    ignore (Tcp.send t0 ~dst:1 "ping");
    ignore (pump loop ~deadline:5.0 (fun () -> !got));
    Tcp.close t0;
    Tcp.close t1;
    Tcp.close t0 (* double close must not double-free *)
  done;
  Alcotest.(check int) "no fd leaked across create/destroy cycles" baseline
    (count_fds ())

(* --- In-process live system: 3 daemons + nemesis + client traffic ------ *)

(* A minimal blocking-connect / nonblocking-read client for the Serve
   protocol; the servers run in this same thread, so reads poll between
   loop pumps. *)
type tclient = {
  cl_fd : Unix.file_descr;
  mutable cl_buf : Bytes.t;
  mutable cl_len : int;
}

let client_connect addr =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.connect fd addr;
  Unix.set_nonblock fd;
  { cl_fd = fd; cl_buf = Bytes.create 4096; cl_len = 0 }

let client_send c req =
  let payload = Client.request_to_string req in
  let msg = Transport.encode_frame_header ~len:(String.length payload) ^ payload in
  ignore (Unix.write_substring c.cl_fd msg 0 (String.length msg))

let client_try_read c =
  (match Unix.read c.cl_fd c.cl_buf c.cl_len (Bytes.length c.cl_buf - c.cl_len) with
  | 0 -> ()
  | n -> c.cl_len <- c.cl_len + n
  | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ());
  match
    Transport.decode_frame_header ~max_frame:Transport.default_max_frame c.cl_buf
      ~off:0 ~avail:c.cl_len
  with
  | Ok (Some len) when c.cl_len >= Transport.frame_header_size + len ->
    let hdr = Transport.frame_header_size in
    let payload = Bytes.sub_string c.cl_buf hdr len in
    let rest = c.cl_len - hdr - len in
    Bytes.blit c.cl_buf (hdr + len) c.cl_buf 0 rest;
    c.cl_len <- rest;
    (match Client.decode_response payload with
    | Ok resp -> Some resp
    | Error e -> Alcotest.failf "client decode: %s" (Transport.error_to_string e))
  | _ -> None

let test_serve_nemesis_convergence () =
  let ports = Array.of_list (fresh_ports 6) in
  let peer_addrs = Array.init 3 (fun i -> loopback ports.(i)) in
  let client_addrs = Array.init 3 (fun i -> loopback ports.(i + 3)) in
  let config =
    { Config.default with Config.transport = { fast_knobs with Config.drain_timeout = 2.0 } }
  in
  let serves =
    Array.init 3 (fun id ->
        Serve.create ~request_timeout:8.0 ~id ~n:3 ~peer_addrs
          ~client_addr:client_addrs.(id) ~config ~seed:(100 + id) ())
  in
  Array.iter Serve.start serves;
  let pump_all ~wall cond =
    let t0 = Unix.gettimeofday () in
    while (not (cond ())) && Unix.gettimeofday () -. t0 < wall do
      Array.iter (fun s -> ignore (Loop.run_once ~max_wait:0.002 (Serve.loop s))) serves
    done;
    cond ()
  in
  Alcotest.(check bool) "mesh up" true
    (pump_all ~wall:8.0 (fun () ->
         Array.for_all (fun s -> Serve.peers_up s = 2) serves));
  (* The nemesis schedule: a rolling partition sweeping each replica plus a
     delay spike, quiescent tail at 1.6 s — installed identically on every
     process, each applying its own projection at the real-network seam. *)
  let sched =
    let rng = Prng.create ~seed:77 in
    {
      Tact_nemesis.Fault.events =
        Tact_nemesis.Gen.compose
          [
            Tact_nemesis.Gen.rolling_partition rng ~n:3 ~start:0.2 ~period:0.4
              ~rounds:3;
            Tact_nemesis.Gen.delay_spike rng ~start:0.3 ~duration:0.6 ~factor:4.0;
          ];
      quiet_after = 1.6;
    }
  in
  Alcotest.(check (list string)) "schedule well-formed" []
    (Tact_nemesis.Fault.validate ~n:3 sched);
  Array.iter (fun s -> Tact_nemesis.Live.install s sched) serves;
  (* Client traffic throughout the disturbance: one write to each replica
     per round, weak bounds — the paper's availability half.  Every write
     must be accepted (writes are local under weak bounds; the replica
     degrades gracefully rather than failing). *)
  let clients = Array.init 3 (fun i -> client_connect client_addrs.(i)) in
  let submitted = ref 0 in
  for round = 1 to 4 do
    Array.iteri
      (fun i c ->
        client_send c
          (Client.Submit
             {
               conit = "c";
               nweight = 1.0;
               oweight = 1.0;
               op = Op.Add ("x", 1.0);
             });
        incr submitted;
        let resp = ref None in
        let ok =
          pump_all ~wall:8.0 (fun () ->
              (match client_try_read c with Some r -> resp := Some r | None -> ());
              !resp <> None)
        in
        Alcotest.(check bool)
          (Printf.sprintf "round %d replica %d write answered" round i)
          true ok;
        match !resp with
        | Some (Client.Outcome (Op.Applied _)) -> ()
        | Some r ->
          Alcotest.failf "write to %d refused during faults: %s" i
            (Client.describe_response r)
        | None -> assert false)
      clients;
    (* Let the disturbance roll between rounds. *)
    let t0 = Unix.gettimeofday () in
    ignore (pump_all ~wall:0.3 (fun () -> Unix.gettimeofday () -. t0 > 0.25))
  done;
  (* Belt and braces before the convergence check: lift every disturbance
     explicitly (idempotent with the schedule's own quiescent tail), going
     through the same entry points the daemon uses. *)
  Array.iter
    (fun s ->
      Tact_nemesis.Live.apply s Tact_nemesis.Fault.Heal_all;
      Tact_nemesis.Live.clear_all s)
    serves;
  (* After the quiescent tail: every replica serves the same total under a
     staleness bound — convergence through the healed network. *)
  let expect = float_of_int !submitted in
  Array.iteri
    (fun i c ->
      client_send c
        (Client.Query
           { key = "x"; conit = "c"; bounds = Bounds.make ~st:0.4 () });
      let resp = ref None in
      let ok =
        pump_all ~wall:12.0 (fun () ->
            (match client_try_read c with Some r -> resp := Some r | None -> ());
            !resp <> None)
      in
      Alcotest.(check bool) (Printf.sprintf "replica %d query answered" i) true ok;
      match !resp with
      | Some (Client.Value v) ->
        Alcotest.(check bool)
          (Printf.sprintf "replica %d converged (%s, want %g)" i
             (Value.to_string v) expect)
          true
          (feq (Value.to_float v) expect)
      | Some r ->
        Alcotest.failf "query at %d failed: %s" i (Client.describe_response r)
      | None -> assert false)
    clients;
  (* Clean accounting: no replica saw malformed bytes, none dropped parked
     frames, every client access above was served (the O6-style
     availability check for the live system). *)
  Array.iter
    (fun s ->
      let r = Serve.replica s in
      Alcotest.(check int)
        (Printf.sprintf "replica %d malformed-free" (Serve.id s))
        0
        (Replica.malformed_frames r);
      Alcotest.(check int)
        (Printf.sprintf "replica %d no parked drops" (Serve.id s))
        0 (Tcp.stats (Serve.tcp s)).Tcp.parked_drops)
    serves;
  Array.iter (fun c -> try Unix.close c.cl_fd with Unix.Unix_error _ -> ()) clients;
  (* Graceful drain: all three stop cleanly. *)
  Array.iter Serve.request_stop serves;
  Array.iter
    (fun s ->
      Alcotest.(check bool) "draining or already stopped" true
        (Serve.draining s || Serve.stopped s))
    serves;
  Alcotest.(check bool) "drained" true
    (pump_all ~wall:6.0 (fun () -> Array.for_all Serve.stopped serves));
  Array.iter Serve.close serves;
  (* close is idempotent and leaves the loop in its stopping state. *)
  Array.iter
    (fun s ->
      Serve.close s;
      Alcotest.(check bool) "loop stopping after close" true
        (Loop.stopping (Serve.loop s)))
    serves

(* --- System.run teardown (satellite f) --------------------------------- *)

let topo n = Tact_sim.Topology.uniform ~n ~latency:0.04 ~bandwidth:1_000_000.0

exception Boom

let test_system_run_teardown_on_raise () =
  let sys = System.create ~topology:(topo 2) ~config:Config.default () in
  let engine = System.engine sys in
  Tact_sim.Engine.schedule engine
    ~label:{ Tact_sim.Engine.actor = -1; tag = "boom" }
    ~delay:0.5
    (fun () -> raise Boom);
  Replica.submit_write (System.replica sys 0) ~deps:[]
    ~affects:[ { Write.conit = "c"; nweight = 1.0; oweight = 1.0 } ]
    ~op:(Op.Add ("x", 1.0)) ~k:ignore;
  (match System.run sys with
  | () -> Alcotest.fail "expected Boom to propagate"
  | exception Boom -> ());
  (* The exception path closed every transport; closing again is a no-op
     and the system is still inspectable. *)
  System.close sys;
  System.close sys;
  Replica.close (System.replica sys 0);
  Alcotest.(check bool) "replicas still inspectable" true
    (Replica.id (System.replica sys 1) = 1)

let test_system_close_idempotent () =
  let sys = System.create ~topology:(topo 3) ~config:Config.default () in
  Replica.submit_write (System.replica sys 1) ~deps:[]
    ~affects:[ { Write.conit = "c"; nweight = 1.0; oweight = 1.0 } ]
    ~op:(Op.Add ("x", 1.0)) ~k:ignore;
  System.run sys;
  System.close sys;
  System.close sys;
  (* A closed replica's sends are inert, not crashes. *)
  let r0 = System.replica sys 0 in
  Replica.close r0;
  Alcotest.(check int) "stats still readable" 0 (Replica.stats r0).Replica.malformed_frames

let suite =
  [
    Alcotest.test_case "supervisor: dial/up/resync cycle" `Quick test_sup_dial_cycle;
    Alcotest.test_case "supervisor: decorrelated backoff sequence" `Quick
      test_sup_backoff_sequence;
    Alcotest.test_case "supervisor: retry exhaustion parks" `Quick
      test_sup_retry_exhaustion_parks;
    Alcotest.test_case "supervisor: half-open detection" `Quick test_sup_half_open;
    Alcotest.test_case "supervisor: connect deadline" `Quick test_sup_connect_deadline;
    Alcotest.test_case "supervisor: stale events absorbed" `Quick
      test_sup_stale_events_absorbed;
    Alcotest.test_case "fuzz: batch decode total" `Quick test_fuzz_batch_decode;
    Alcotest.test_case "fuzz: wire decode total" `Quick test_fuzz_wire_decode;
    Alcotest.test_case "fuzz: client decode total" `Quick test_fuzz_client_decode;
    Alcotest.test_case "framing: header bounds" `Quick test_frame_header_bounds;
    Alcotest.test_case "config: transport knob diagnostics" `Quick
      test_config_transport_knobs;
    Alcotest.test_case "faulty: seeded determinism" `Quick test_faulty_deterministic;
    Alcotest.test_case "faulty: partition semantics" `Quick test_faulty_partitions;
    Alcotest.test_case "tcp: loopback delivery" `Quick test_tcp_loopback_delivery;
    Alcotest.test_case "tcp: park and reconnect-resync" `Quick
      test_tcp_park_and_reconnect_resync;
    Alcotest.test_case "tcp: parks after retry budget" `Quick
      test_tcp_parks_after_retry_budget;
    Alcotest.test_case "tcp: poisons hostile bytes" `Quick test_tcp_poisons_hostile_bytes;
    Alcotest.test_case "tcp: no fd leak on create/destroy" `Quick test_tcp_no_fd_leak;
    Alcotest.test_case "serve: nemesis run converges" `Slow
      test_serve_nemesis_convergence;
    Alcotest.test_case "system: teardown on raise" `Quick
      test_system_run_teardown_on_raise;
    Alcotest.test_case "system: close idempotent" `Quick test_system_close_idempotent;
  ]
