(* Sharded conit space: router properties, differential sharded-vs-unsharded
   runs (1 shard must replay the plain system byte-for-byte, including under
   nemesis fault schedules), -j1 vs -jN determinism down to serialized JSON,
   interest-set routing errors, and the planted wrong-shard bugs the
   interest-set-aware checker must catch. *)

open Tact_util
open Tact_sim
open Tact_store
open Tact_core
open Tact_replica

let topo ?(latency = 0.04) n = Topology.uniform ~n ~latency ~bandwidth:1_000_000.0
let unit_weight conit = { Write.conit; nweight = 1.0; oweight = 1.0 }
let conit_names = [| "alpha"; "beta"; "gamma"; "delta" |]

(* --- Router ----------------------------------------------------------- *)

let test_router_basics () =
  Alcotest.(check int) "single has one shard" 1 (Shard.shards Shard.single);
  Alcotest.(check int) "single routes to 0" 0 (Shard.route Shard.single "any");
  let r = Shard.by_hash ~shards:4 in
  Array.iter
    (fun c ->
      let s = Shard.route r c in
      Alcotest.(check bool) "in range" true (s >= 0 && s < 4);
      Alcotest.(check int) "deterministic" s (Shard.route r c))
    conit_names;
  match Shard.by_hash ~shards:0 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "shards < 1 accepted"

let test_router_pins () =
  let base = Shard.by_hash ~shards:3 in
  let r = Shard.with_table base [ ("alpha", 2); ("beta", 0) ] in
  Alcotest.(check int) "pin alpha" 2 (Shard.route r "alpha");
  Alcotest.(check int) "pin beta" 0 (Shard.route r "beta");
  Alcotest.(check int) "unpinned falls back" (Shard.route base "gamma")
    (Shard.route r "gamma");
  Alcotest.(check bool) "renders for diagnostics" true
    (String.length (Shard.to_string r) > 0)

let test_route_write_cross_shard_rejected () =
  let r = Shard.with_table (Shard.by_hash ~shards:2) [ ("a", 0); ("b", 1) ] in
  let w =
    Write.make ~id:{ Write.origin = 0; seq = 1 } ~accept_time:0.0 ~op:Op.Noop
      ~affects:[ unit_weight "a"; unit_weight "b" ]
  in
  (match Shard.route_write r w with
  | exception Invalid_argument _ -> ()
  | s -> Alcotest.failf "cross-shard write routed to %d" s);
  let w0 =
    Write.make ~id:{ Write.origin = 0; seq = 2 } ~accept_time:0.0 ~op:Op.Noop
      ~affects:[]
  in
  Alcotest.(check int) "conit-less writes live in shard 0" 0
    (Shard.route_write r w0)

(* --- Differential: 1 shard vs plain system ---------------------------- *)

(* The same deterministic workload, schedulable against either driver: a mix
   of writes across conits and replicas plus weak reads, all at fixed times.
   [sched] places the thunk on the engine owning the conit's shard (for the
   plain system, always its single engine). *)
let drive ~n ~sched ~write ~read =
  for i = 0 to 47 do
    let r = i mod n in
    let c = conit_names.(i mod Array.length conit_names) in
    let tm = 0.5 +. (0.37 *. float_of_int i) in
    sched c tm (fun () -> write ~replica:r ~conit:c ~v:(1.0 +. float_of_int i))
  done;
  for i = 0 to 7 do
    let r = (i * 3) mod n in
    let c = conit_names.(i mod Array.length conit_names) in
    sched c (20.0 +. float_of_int i) (fun () -> read ~replica:r ~conit:c)
  done

let plain_drivers sys =
  ( (fun _conit tm f -> Engine.at (System.engine sys) ~time:tm f),
    (fun ~replica ~conit ~v ->
      Replica.submit_write (System.replica sys replica) ~deps:[]
        ~affects:[ unit_weight conit ]
        ~op:(Op.Add ("x:" ^ conit, v))
        ~k:ignore),
    fun ~replica ~conit ->
      Replica.submit_read (System.replica sys replica)
        ~deps:[ (conit, Bounds.weak) ]
        ~f:(fun db -> Db.get db ("x:" ^ conit))
        ~k:ignore )

let sharded_drivers sh =
  ( (fun conit tm f ->
      Engine.at (Sharded.engine sh ~shard:(Sharded.route sh conit)) ~time:tm f),
    (fun ~replica ~conit ~v ->
      Sharded.submit_write sh ~replica ~deps:[]
        ~affects:[ unit_weight conit ]
        ~op:(Op.Add ("x:" ^ conit, v))
        ~k:ignore),
    fun ~replica ~conit ->
      Sharded.submit_read sh ~replica
        ~deps:[ (conit, Bounds.weak) ]
        ~f:(fun db -> Db.get db ("x:" ^ conit))
        ~k:ignore )

let stats_equal (a : Replica.stats) (b : Replica.stats) = a = b

(* Field-by-field byte-identity of a plain system and a 1-shard sharded one:
   databases, version vectors, per-replica protocol counters, net totals. *)
let assert_identical ~ctx sys sh =
  let n = System.size sys in
  Alcotest.(check int) (ctx ^ ": one shard") 1 (Sharded.shards sh);
  for r = 0 to n - 1 do
    let pr = System.replica sys r and sr = Sharded.replica sh ~shard:0 r in
    Alcotest.(check bool)
      (Printf.sprintf "%s: replica %d db identical" ctx r)
      true
      (Db.equal (Replica.db pr) (Replica.db sr));
    Alcotest.(check bool)
      (Printf.sprintf "%s: replica %d vector identical" ctx r)
      true
      (Version_vector.equal
         (Wlog.vector (Replica.log pr))
         (Wlog.vector (Replica.log sr)));
    Alcotest.(check bool)
      (Printf.sprintf "%s: replica %d stats identical" ctx r)
      true
      (stats_equal (Replica.stats pr) (Replica.stats sr))
  done;
  let pt = System.traffic sys and st = Sharded.traffic sh in
  Alcotest.(check bool) (ctx ^ ": traffic identical") true (pt = st);
  Alcotest.(check bool)
    (ctx ^ ": aggregate stats identical")
    true
    (stats_equal (System.total_stats sys) (Sharded.total_stats sh));
  Alcotest.(check int) (ctx ^ ": sub-system spans all replicas") n
    (System.size (Sharded.sub sh 0))

let diff_config =
  {
    Config.default with
    Config.conits =
      Array.to_list (Array.map (fun c -> Conit.unconstrained c) conit_names);
    antientropy_period = Some 2.0;
  }

let run_diff_pair ~ctx ~config ~seed ~n ~horizon ~faults =
  let sys = System.create ~seed ~topology:(topo n) ~config () in
  let sh =
    Sharded.create ~seed ~topology:(topo n)
      ~config:{ config with Config.shards = 1 }
      ()
  in
  (match faults with
  | None -> ()
  | Some sched ->
    Tact_nemesis.Fault.install sys sched;
    Tact_nemesis.Fault.install_sharded sh sched);
  let psched, pwrite, pread = plain_drivers sys in
  drive ~n ~sched:psched ~write:pwrite ~read:pread;
  let ssched, swrite, sread = sharded_drivers sh in
  drive ~n ~sched:ssched ~write:swrite ~read:sread;
  System.run ~until:horizon sys;
  Sharded.run ~until:horizon sh;
  assert_identical ~ctx sys sh;
  Alcotest.(check bool) (ctx ^ ": plain converged") true (System.converged sys);
  Alcotest.(check bool) (ctx ^ ": sharded converged") true (Sharded.converged sh);
  Alcotest.(check (list string))
    (ctx ^ ": sharded O3 clean")
    []
    (Tact_check.Oracle.check_converged_sharded sh)

let test_one_shard_identical_per_write () =
  run_diff_pair ~ctx:"per-write" ~config:diff_config ~seed:7 ~n:4
    ~horizon:120.0 ~faults:None

let test_one_shard_identical_batched () =
  let config = { diff_config with Config.sync = Config.Batched } in
  run_diff_pair ~ctx:"batched" ~config ~seed:11 ~n:4 ~horizon:120.0
    ~faults:None

let test_one_shard_identical_under_faults () =
  let rng = Prng.create ~seed:1234 in
  let n = 4 in
  let events =
    Tact_nemesis.Gen.compose
      [
        Tact_nemesis.Gen.crash_storm (Prng.split rng) ~n ~start:2.0
          ~horizon:40.0 ~mean_uptime:8.0 ~mean_downtime:4.0;
        Tact_nemesis.Gen.flapping_link (Prng.split rng) ~n ~start:5.0
          ~period:6.0 ~flaps:4;
      ]
  in
  let sched = { Tact_nemesis.Fault.events; quiet_after = 60.0 } in
  Alcotest.(check (list string))
    "schedule well formed" []
    (Tact_nemesis.Fault.validate ~n sched);
  run_diff_pair ~ctx:"nemesis" ~config:diff_config ~seed:23 ~n ~horizon:200.0
    ~faults:(Some sched)

(* --- Determinism: -j1 vs -j4 ------------------------------------------ *)

let pinned_router shards =
  Shard.with_table (Shard.by_hash ~shards)
    (Array.to_list (Array.mapi (fun i c -> (c, i mod shards)) conit_names))

(* 3 shards, 6 replicas, partial interest (each replica serves 2 shards). *)
let sharded_instance ~seed =
  let shards = 3 in
  let n = 6 in
  let interest r = List.sort_uniq Int.compare [ r mod shards; (r + 1) mod shards ] in
  let config =
    {
      diff_config with
      Config.shards;
      interest = Some interest;
      sync = Config.Batched;
    }
  in
  let router = pinned_router shards in
  let sh = Sharded.create ~seed ~router ~topology:(topo n) ~config () in
  let sched, write, read = sharded_drivers sh in
  (* Only submit at replicas subscribed to the conit's shard. *)
  let subscribed_write ~replica ~conit ~v =
    let s = Sharded.route sh conit in
    let replica =
      if Sharded.subscribed sh ~shard:s replica then replica
      else (Sharded.members sh s).(replica mod Array.length (Sharded.members sh s))
    in
    write ~replica ~conit ~v
  in
  let subscribed_read ~replica ~conit =
    let s = Sharded.route sh conit in
    let replica =
      if Sharded.subscribed sh ~shard:s replica then replica
      else (Sharded.members sh s).(replica mod Array.length (Sharded.members sh s))
    in
    read ~replica ~conit
  in
  drive ~n ~sched ~write:subscribed_write ~read:subscribed_read;
  sh

let test_jobs_determinism () =
  let run jobs =
    let sh = sharded_instance ~seed:99 in
    Sharded.run ~jobs ~until:150.0 sh;
    sh
  in
  let s1 = run 1 and s4 = run 4 in
  let d1 = Sharded.digest s1 and d4 = Sharded.digest s4 in
  Alcotest.(check bool) "digest non-trivial" true (String.length d1 > 100);
  Alcotest.(check string) "-j1 and -j4 serialized state identical" d1 d4;
  Alcotest.(check bool) "partial-interest run converged" true
    (Sharded.converged s4);
  Alcotest.(check (list string))
    "interest-set O3 clean" []
    (Tact_check.Oracle.check_converged_sharded s4)

(* --- Interest-set routing errors -------------------------------------- *)

let test_routing_errors () =
  let shards = 2 in
  let n = 3 in
  let router = Shard.with_table (Shard.by_hash ~shards) [ ("a", 0); ("b", 1) ] in
  let interest r = if r = 0 then [ 0 ] else [ 0; 1 ] in
  let config =
    { Config.default with Config.shards; interest = Some interest }
  in
  let sh = Sharded.create ~router ~topology:(topo n) ~config () in
  Alcotest.(check int) "config round-trips" shards
    (Sharded.config sh).Config.shards;
  Alcotest.(check int) "target shard of a conit set" 1
    (Sharded.target_shard sh [ "b" ]);
  (match Sharded.target_shard sh [ "a"; "b" ] with
  | exception Invalid_argument _ -> ()
  | s -> Alcotest.failf "mixed-shard conit set targeted %d" s);
  Alcotest.(check (option int)) "replica 0 not in shard 1" None
    (Sharded.local_id sh ~shard:1 0);
  Alcotest.(check bool) "replica 1 in shard 1" true
    (Sharded.subscribed sh ~shard:1 1);
  (* Submitting at a replica outside the conit's shard is an error... *)
  (match
     Sharded.submit_write sh ~replica:0 ~deps:[]
       ~affects:[ unit_weight "b" ]
       ~op:(Op.Add ("x", 1.0))
       ~k:ignore
   with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "unsubscribed submission accepted");
  (* ...and so is an access spanning shards. *)
  (match
     Sharded.submit_write sh ~replica:1 ~deps:[]
       ~affects:[ unit_weight "a"; unit_weight "b" ]
       ~op:(Op.Add ("x", 1.0))
       ~k:ignore
   with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "cross-shard access accepted");
  (* Spec-level interest derivation agrees with the router. *)
  let cls =
    Spec.op_class ~name:"w"
      ~affects:(fun c -> [ (c, 1.0, 1.0) ])
      ~op:(fun _ -> Op.Noop)
      ()
  in
  let q =
    Spec.query ~name:"r"
      ~depends:(fun c -> [ (c, Tact_core.Bounds.weak) ])
      ~read:(fun c db -> Db.get db ("x:" ^ c))
      ()
  in
  Alcotest.(check (list int))
    "interest from op classes and queries" [ 0; 1 ]
    (Spec.interest ~router
       (Spec.class_conits cls "a" @ Spec.query_conits q "b"))

let test_empty_interest_rejected () =
  let config =
    {
      Config.default with
      Config.shards = 2;
      interest = Some (fun r -> if r = 0 then [] else [ 0; 1 ]);
    }
  in
  match Sharded.create ~topology:(topo 2) ~config () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "empty interest set accepted"

(* --- Planted bugs ------------------------------------------------------ *)

(* With [fault_wrong_shard] every submission lands one shard over; the
   per-shard sub-systems still converge internally, so plain per-shard
   convergence cannot see the bug — the cross-shard containment audit
   (shard_leaks) must. *)
let test_planted_wrong_shard_caught () =
  let shards = 2 in
  let n = 3 in
  let router = Shard.with_table (Shard.by_hash ~shards) [ ("a", 0); ("b", 1) ] in
  let run ~planted =
    let config =
      {
        Config.default with
        Config.shards;
        fault_wrong_shard = planted;
        antientropy_period = Some 1.0;
        conits = [ Conit.unconstrained "a"; Conit.unconstrained "b" ];
      }
    in
    let sh = Sharded.create ~router ~topology:(topo n) ~config () in
    for i = 0 to 5 do
      let c = if i mod 2 = 0 then "a" else "b" in
      (* Schedule on the engine the submission will actually land on. *)
      let s = if planted then (Sharded.route sh c + 1) mod shards
              else Sharded.route sh c in
      Engine.at (Sharded.engine sh ~shard:s)
        ~time:(1.0 +. float_of_int i)
        (fun () ->
          Sharded.submit_write sh ~replica:(i mod n) ~deps:[]
            ~affects:[ unit_weight c ]
            ~op:(Op.Add ("x:" ^ c, 1.0))
            ~k:ignore)
    done;
    Sharded.run ~until:60.0 sh;
    sh
  in
  let healthy = run ~planted:false in
  Alcotest.(check (list string))
    "healthy run passes the interest-set O3" []
    (Tact_check.Oracle.check_converged_sharded healthy);
  Alcotest.(check int) "healthy run has no leaks" 0
    (List.length (Sharded.shard_leaks healthy));
  let buggy = run ~planted:true in
  let issues = Tact_check.Oracle.check_converged_sharded buggy in
  Alcotest.(check bool) "planted bug caught" true (issues <> []);
  Alcotest.(check bool) "caught as a shard leak" true
    (List.exists
       (fun l ->
         String.length l >= 10 && String.sub l 0 10 = "shard-leak")
       issues);
  Alcotest.(check bool) "leaks enumerated" true
    (Sharded.shard_leaks buggy <> [])

(* A Batch frame that reaches a replica serving a different shard is
   rejected at the wire (and counted), never applied — the frame-level
   defence behind the containment audit.  Two hand-wired replicas with
   mismatched shard_id stand in for a leaked delivery. *)
let test_wrong_shard_frame_rejected () =
  let engine = Engine.create () in
  let net = Net.create engine (topo 2) () in
  let mk shard_id =
    {
      Config.default with
      Config.shards = 2;
      shard_id;
      sync = Config.Batched;
      antientropy_period = Some 0.5;
      conits = [ Conit.unconstrained "a" ];
    }
  in
  let r0 = Replica.create ~id:0 ~n:2 ~net ~config:(mk 0) () in
  let r1 = Replica.create ~id:1 ~n:2 ~net ~config:(mk 1) () in
  let peers = [| r0; r1 |] in
  Replica.connect r0 ~peers:(fun j -> peers.(j));
  Replica.connect r1 ~peers:(fun j -> peers.(j));
  Engine.at engine ~time:0.1 (fun () ->
      Replica.submit_write r0 ~deps:[]
        ~affects:[ unit_weight "a" ]
        ~op:(Op.Add ("x", 1.0))
        ~k:ignore);
  Replica.start r0;
  Replica.start r1;
  Engine.run ~until:20.0 engine;
  let s1 = Replica.stats r1 in
  Alcotest.(check bool) "frames rejected and counted" true
    (s1.Replica.wrong_shard_frames > 0);
  Alcotest.(check bool) "rejected write never applied" false
    (Wlog.known (Replica.log r1) { Write.origin = 0; seq = 1 })

(* --- Shard-aware fault projection and O6 ------------------------------- *)

let test_fault_projection_shard_local () =
  let shards = 2 in
  let n = 4 in
  let router = Shard.with_table (Shard.by_hash ~shards) [ ("a", 0); ("b", 1) ] in
  (* Replicas 0,1 serve shard 0 only; 2,3 serve shard 1 only. *)
  let interest r = [ (if r < 2 then 0 else 1) ] in
  let config =
    {
      Config.default with
      Config.shards;
      interest = Some interest;
      conits = [ Conit.unconstrained "a"; Conit.unconstrained "b" ];
    }
  in
  let sh = Sharded.create ~router ~topology:(topo n) ~config () in
  (* Crashing replica 3 must only touch shard 1's sub-system. *)
  Tact_nemesis.Fault.apply_sharded sh (Tact_nemesis.Fault.Crash 3);
  Alcotest.(check bool) "crashed in its shard" false
    (Replica.is_up (Sharded.replica sh ~shard:1 3));
  Alcotest.(check bool) "shard 0 untouched" true
    (Replica.is_up (Sharded.replica sh ~shard:0 0));
  Tact_nemesis.Fault.clear_all_sharded sh;
  Alcotest.(check bool) "recovered" true
    (Replica.is_up (Sharded.replica sh ~shard:1 3));
  (* O6: a timeout at replica 0 (shard 0) cannot be excused by a crash
     confined to shard 1's interest set, but the global check would. *)
  let sched =
    {
      Tact_nemesis.Fault.events =
        [ { Tact_nemesis.Fault.at = 1.0; action = Tact_nemesis.Fault.Crash 3 } ];
      quiet_after = 10.0;
    }
  in
  let obs r =
    {
      Tact_nemesis.Oracle.o_index = 0;
      o_rid = r;
      o_submit = 2.0;
      o_deadline = Some 5.0;
      o_read = true;
      o_completions = 0;
      o_timeouts = 1;
    }
  in
  Alcotest.(check (list string))
    "global O6 excuses the timeout" []
    (Tact_nemesis.Oracle.check_unavailability ~schedule:sched ~slack:5.0
       [ obs 0 ]);
  Alcotest.(check bool) "interest-set O6 does not" true
    (Tact_nemesis.Oracle.check_unavailability_sharded ~sh ~schedule:sched
       ~slack:5.0 [ obs 0 ]
    <> []);
  Alcotest.(check (list string))
    "interest-set O6 excuses a peer of the crash" []
    (Tact_nemesis.Oracle.check_unavailability_sharded ~sh ~schedule:sched
       ~slack:5.0 [ obs 2 ]);
  Alcotest.(check (list string))
    "sharded liveness clean on quiet system" []
    (Tact_nemesis.Oracle.check_liveness_sharded sh [])

let suite =
  [
    Alcotest.test_case "router basics" `Quick test_router_basics;
    Alcotest.test_case "router pins" `Quick test_router_pins;
    Alcotest.test_case "cross-shard writes rejected" `Quick
      test_route_write_cross_shard_rejected;
    Alcotest.test_case "1 shard == unsharded (per-write)" `Quick
      test_one_shard_identical_per_write;
    Alcotest.test_case "1 shard == unsharded (batched)" `Quick
      test_one_shard_identical_batched;
    Alcotest.test_case "1 shard == unsharded under faults" `Quick
      test_one_shard_identical_under_faults;
    Alcotest.test_case "-j1 == -j4 down to serialized JSON" `Quick
      test_jobs_determinism;
    Alcotest.test_case "interest-set routing errors" `Quick test_routing_errors;
    Alcotest.test_case "empty interest set rejected" `Quick
      test_empty_interest_rejected;
    Alcotest.test_case "planted wrong-shard routing caught" `Quick
      test_planted_wrong_shard_caught;
    Alcotest.test_case "wrong-shard frame rejected at the wire" `Quick
      test_wrong_shard_frame_rejected;
    Alcotest.test_case "faults project shard-locally; O6 interest-aware"
      `Quick test_fault_projection_shard_local;
  ]
