(* Log truncation and full-state snapshot transfer. *)

open Tact_sim
open Tact_store
open Tact_replica

let feq a b = Float.abs (a -. b) < 1e-9

let unit_w conit = { Write.conit; nweight = 1.0; oweight = 1.0 }

let mk ~origin ~seq ~t =
  Write.make ~id:{ origin; seq } ~accept_time:t
    ~op:(Op.Add ("x", 1.0))
    ~affects:[ unit_w "c" ]

let filled_log n =
  let log = Wlog.create ~replicas:2 ~initial:[] in
  for seq = 1 to n do
    ignore (Wlog.accept log (mk ~origin:0 ~seq ~t:(float_of_int seq)))
  done;
  ignore (Wlog.commit_stable log ~cover:[| infinity; infinity |]);
  log

(* --- Wlog-level ------------------------------------------------------- *)

let test_truncate_basics () =
  let log = filled_log 10 in
  Alcotest.(check int) "retained before" 10 (Wlog.retained log);
  Alcotest.(check int) "dropped" 7 (Wlog.truncate log ~keep:3);
  Alcotest.(check int) "retained after" 3 (Wlog.retained log);
  Alcotest.(check int) "committed count unchanged" 10 (Wlog.committed_count log);
  Alcotest.(check bool) "db unchanged" true (feq (Db.get_float (Wlog.db log) "x") 10.0);
  Alcotest.(check int) "idempotent" 0 (Wlog.truncate log ~keep:3);
  (* Can still serve a peer that has the truncated prefix... *)
  let v = Version_vector.create 2 in
  Version_vector.set v 0 7;
  Alcotest.(check bool) "serveable peer" true (Wlog.can_serve log v);
  Alcotest.(check int) "diff size" 3 (List.length (Wlog.writes_since log v));
  (* ...but not one that is behind the truncation point. *)
  let behind = Version_vector.create 2 in
  Version_vector.set behind 0 2;
  Alcotest.(check bool) "unserveable peer" false (Wlog.can_serve log behind);
  Alcotest.(check bool) "writes_since refuses" true
    (try
       ignore (Wlog.writes_since log behind);
       false
     with Invalid_argument _ -> true)

let test_truncate_keeps_newest () =
  let log = filled_log 5 in
  ignore (Wlog.truncate log ~keep:2);
  let kept = List.map (fun (w : Write.t) -> w.Write.id.Write.seq) (Wlog.committed log) in
  Alcotest.(check (list int)) "newest kept in order" [ 4; 5 ] kept

let test_snapshot_roundtrip () =
  let src = filled_log 6 in
  ignore (Wlog.truncate src ~keep:1);
  let snap = Wlog.snapshot src in
  Alcotest.(check int) "snapshot count" 6 snap.Wlog.snap_ncommitted;
  (* A fresh replica installs it. *)
  let dst = Wlog.create ~replicas:2 ~initial:[] in
  Alcotest.(check bool) "installed" true (Wlog.install_snapshot dst snap);
  Alcotest.(check bool) "state adopted" true (feq (Db.get_float (Wlog.db dst) "x") 6.0);
  Alcotest.(check int) "committed adopted" 6 (Wlog.committed_count dst);
  Alcotest.(check bool) "conit value adopted" true (feq (Wlog.conit_value dst "c") 6.0);
  Alcotest.(check bool) "vector adopted" true
    (Version_vector.covers (Wlog.vector dst) ~origin:0 ~seq:6);
  (* Installing an older or equal snapshot is refused. *)
  Alcotest.(check bool) "stale snapshot refused" false (Wlog.install_snapshot dst snap)

let test_snapshot_preserves_local_tentative () =
  let src = filled_log 4 in
  let snap = Wlog.snapshot src in
  (* The destination has its own uncommitted write not covered by the
     snapshot. *)
  let dst = Wlog.create ~replicas:2 ~initial:[] in
  ignore (Wlog.insert dst (mk ~origin:1 ~seq:1 ~t:9.0));
  Alcotest.(check bool) "installed" true (Wlog.install_snapshot dst snap);
  Alcotest.(check bool) "local write replayed on top" true
    (feq (Db.get_float (Wlog.db dst) "x") 5.0);
  Alcotest.(check int) "still tentative" 1 (List.length (Wlog.tentative dst));
  Alcotest.(check bool) "oe preserved" true (feq (Wlog.tentative_oweight dst "c") 1.0);
  Alcotest.(check bool) "value = committed + tentative" true
    (feq (Wlog.conit_value dst "c") 5.0)

let test_snapshot_folds_covered_tentative () =
  let src = filled_log 4 in
  let snap = Wlog.snapshot src in
  (* The destination already holds, tentatively, two of the writes the
     snapshot commits. *)
  let dst = Wlog.create ~replicas:2 ~initial:[] in
  ignore (Wlog.insert dst (mk ~origin:0 ~seq:1 ~t:1.0));
  ignore (Wlog.insert dst (mk ~origin:0 ~seq:2 ~t:2.0));
  Alcotest.(check bool) "installed" true (Wlog.install_snapshot dst snap);
  Alcotest.(check int) "folded, not duplicated" 0 (List.length (Wlog.tentative dst));
  Alcotest.(check bool) "state is the snapshot's" true
    (feq (Db.get_float (Wlog.db dst) "x") 4.0);
  Alcotest.(check bool) "oe drained" true (feq (Wlog.tentative_oweight dst "c") 0.0)

(* --- System-level: rejoin via snapshot --------------------------------- *)

let test_rejoin_via_snapshot () =
  let topology = Topology.uniform ~n:3 ~latency:0.03 ~bandwidth:1_000_000.0 in
  (* Primary commitment keeps committing (and truncating) among the connected
     majority during the partition, so the disconnected replica genuinely
     falls behind the truncation point.  (Under stability commitment the
     partition stalls commitment system-wide and no snapshot is ever needed —
     that behaviour is covered by the replica suite.) *)
  let config =
    {
      Config.default with
      Config.commit_scheme = Config.Primary 0;
      antientropy_period = Some 0.5;
      truncate_keep = Some 5;
    }
  in
  let sys = System.create ~topology ~config () in
  let engine = System.engine sys in
  (* Replica 2 is partitioned from the start; 0 and 1 accumulate and commit
     (and truncate) 40 writes. *)
  Net.partition (System.net sys) [ 2 ] [ 0; 1 ];
  for k = 1 to 40 do
    Engine.schedule engine
      ~delay:(0.2 *. float_of_int k)
      (fun () ->
        Replica.submit_write (System.replica sys (k mod 2)) ~deps:[]
          ~affects:[ unit_w "c" ]
          ~op:(Op.Add ("x", 1.0))
          ~k:ignore)
  done;
  Engine.schedule engine ~delay:20.0 (fun () -> Net.heal (System.net sys));
  System.run ~until:120.0 sys;
  (* The writers truncated their logs... *)
  Alcotest.(check bool) "logs truncated" true
    (Wlog.retained (Replica.log (System.replica sys 0)) <= 5);
  (* ...so replica 2 must have caught up via a snapshot, and converged. *)
  let s = System.total_stats sys in
  Alcotest.(check bool) "snapshot transferred" true (s.Replica.snapshots_sent > 0);
  Alcotest.(check bool) "snapshot installed" true (s.Replica.snapshots_installed > 0);
  Alcotest.(check bool) "converged" true (System.converged sys);
  Alcotest.(check bool) "replica 2 sees all writes" true
    (feq (Db.get_float (Replica.db (System.replica sys 2)) "x") 40.0)

(* Convergence must also survive random message loss (ack-driven retransmit
   plus gossip recover everything). *)
let test_convergence_under_loss () =
  let topology = Topology.uniform ~n:3 ~latency:0.03 ~bandwidth:1_000_000.0 in
  let config = { Config.default with Config.antientropy_period = Some 0.5 } in
  let sys = System.create ~seed:7 ~loss:0.3 ~topology ~config () in
  let engine = System.engine sys in
  for k = 1 to 30 do
    Engine.schedule engine
      ~delay:(0.3 *. float_of_int k)
      (fun () ->
        Replica.submit_write (System.replica sys (k mod 3)) ~deps:[]
          ~affects:[ unit_w "c" ]
          ~op:(Op.Add ("x", 1.0))
          ~k:ignore)
  done;
  System.run ~until:300.0 sys;
  Alcotest.(check bool) "lossy network dropped messages" true
    ((System.traffic sys).Net.dropped > 0);
  Alcotest.(check bool) "converged despite loss" true (System.converged sys);
  Alcotest.(check bool) "all committed despite loss" true
    (Wlog.committed_count (Replica.log (System.replica sys 0)) = 30)

let suite =
  [
    Alcotest.test_case "truncate basics" `Quick test_truncate_basics;
    Alcotest.test_case "truncate keeps newest" `Quick test_truncate_keeps_newest;
    Alcotest.test_case "snapshot roundtrip" `Quick test_snapshot_roundtrip;
    Alcotest.test_case "snapshot preserves tentative" `Quick test_snapshot_preserves_local_tentative;
    Alcotest.test_case "snapshot folds covered tentative" `Quick test_snapshot_folds_covered_tentative;
    Alcotest.test_case "rejoin via snapshot" `Quick test_rejoin_via_snapshot;
    Alcotest.test_case "convergence under loss" `Quick test_convergence_under_loss;
  ]
