(* Bounds, Conit, Metrics, Ecg, Access — the paper's formal layer. *)

open Tact_store
open Tact_core

let feq a b = Float.abs (a -. b) < 1e-9

let w ?(nw = 1.0) ?(ow = 1.0) ~origin ~seq ~t conits =
  Write.make ~id:{ origin; seq } ~accept_time:t ~op:Op.Noop
    ~affects:(List.map (fun c -> { Write.conit = c; nweight = nw; oweight = ow }) conits)

(* --- Bounds ----------------------------------------------------------- *)

let test_bounds_extremes () =
  Alcotest.(check bool) "weak is weak" true (Bounds.is_weak Bounds.weak);
  Alcotest.(check bool) "strong is strong" true (Bounds.is_strong Bounds.strong);
  Alcotest.(check bool) "weak not strong" false (Bounds.is_strong Bounds.weak);
  Alcotest.(check bool) "default unconstrained" true (Bounds.is_weak (Bounds.make ()))

let test_bounds_within () =
  let b = Bounds.make ~ne:5.0 ~oe:2.0 ~st:10.0 () in
  Alcotest.(check bool) "inside" true
    (Bounds.within ~ne:5.0 ~ne_rel:0.0 ~oe:2.0 ~st:10.0 b);
  Alcotest.(check bool) "ne breach" false
    (Bounds.within ~ne:5.1 ~ne_rel:0.0 ~oe:0.0 ~st:0.0 b);
  Alcotest.(check bool) "oe breach" false
    (Bounds.within ~ne:0.0 ~ne_rel:0.0 ~oe:3.0 ~st:0.0 b);
  Alcotest.(check bool) "st breach" false
    (Bounds.within ~ne:0.0 ~ne_rel:0.0 ~oe:0.0 ~st:11.0 b);
  Alcotest.(check bool) "ne_rel unconstrained" true
    (Bounds.within ~ne:0.0 ~ne_rel:1e9 ~oe:0.0 ~st:0.0 b)

let test_bounds_tighten () =
  let a = Bounds.make ~ne:5.0 ~st:1.0 () in
  let b = Bounds.make ~ne:2.0 ~oe:3.0 () in
  let t = Bounds.tighten a b in
  Alcotest.(check bool) "componentwise min" true
    (feq t.Bounds.ne 2.0 && feq t.Bounds.oe 3.0 && feq t.Bounds.st 1.0
    && t.Bounds.ne_rel = infinity)

let test_bounds_to_string () =
  Alcotest.(check string) "render" "(ne=1 ne_rel=inf oe=0 st=inf)"
    (Bounds.to_string (Bounds.make ~ne:1.0 ~oe:0.0 ()))

(* --- Conit ------------------------------------------------------------ *)

let test_conit_declare () =
  let c = Conit.declare ~ne_bound:3.0 ~initial_value:100.0 "seats" in
  Alcotest.(check string) "name" "seats" c.Conit.name;
  Alcotest.(check bool) "ne bound" true (feq c.Conit.ne_bound 3.0);
  Alcotest.(check bool) "rel default inf" true (c.Conit.ne_rel_bound = infinity);
  Alcotest.(check bool) "initial" true (feq c.Conit.initial_value 100.0);
  let u = Conit.unconstrained "x" in
  Alcotest.(check bool) "unconstrained" true
    (u.Conit.ne_bound = infinity && feq u.Conit.initial_value 0.0)

(* --- Metrics ------------------------------------------------------------ *)

let test_metrics_value () =
  let h = [ w ~nw:2.0 ~origin:0 ~seq:1 ~t:1.0 [ "a" ]; w ~nw:(-0.5) ~origin:0 ~seq:2 ~t:2.0 [ "a"; "b" ] ] in
  Alcotest.(check bool) "signed sum" true (feq (Metrics.value h "a") 1.5);
  Alcotest.(check bool) "per conit" true (feq (Metrics.value h "b") (-0.5));
  Alcotest.(check bool) "absent" true (feq (Metrics.value h "z") 0.0)

let test_metrics_numerical_error () =
  let actual = [ w ~origin:0 ~seq:1 ~t:1.0 [ "a" ]; w ~origin:0 ~seq:2 ~t:2.0 [ "a" ] ] in
  let observed = [ List.hd actual ] in
  Alcotest.(check bool) "ne 1" true (feq (Metrics.numerical_error ~actual ~observed "a") 1.0);
  Alcotest.(check bool) "rel 0.5" true (feq (Metrics.relative_error ~actual ~observed "a") 0.5);
  Alcotest.(check bool) "equal views 0" true
    (feq (Metrics.numerical_error ~actual ~observed:actual "a") 0.0)

let test_metrics_relative_edge () =
  let a = [ w ~nw:1.0 ~origin:0 ~seq:1 ~t:1.0 [ "a" ] ] in
  let a_neg = [ w ~nw:(-1.0) ~origin:0 ~seq:1 ~t:1.0 [ "a" ] ] in
  Alcotest.(check bool) "both empty -> 0" true
    (feq (Metrics.relative_error ~actual:[] ~observed:[] "a") 0.0);
  Alcotest.(check bool) "actual 0, observed not -> inf" true
    (Metrics.relative_error ~actual:[] ~observed:a "a" = infinity);
  Alcotest.(check bool) "negative actual uses |value|" true
    (feq (Metrics.relative_error ~actual:a_neg ~observed:[] "a") 1.0)

let test_metrics_projection () =
  let h =
    [ w ~origin:0 ~seq:1 ~t:1.0 [ "a" ]; w ~origin:0 ~seq:2 ~t:2.0 [ "b" ];
      w ~origin:0 ~seq:3 ~t:3.0 [ "a"; "b" ] ]
  in
  Alcotest.(check int) "projection filters" 2 (List.length (Metrics.projection h "a"));
  Alcotest.(check int) "order preserved" 1
    ((List.hd (Metrics.projection h "a")).Write.id.Write.seq)

let test_metrics_oe_lcp () =
  let w1 = w ~origin:0 ~seq:1 ~t:1.0 [ "a" ] in
  let w2 = w ~origin:1 ~seq:1 ~t:2.0 [ "a" ] in
  let w3 = w ~origin:2 ~seq:1 ~t:3.0 [ "a" ] in
  let ecg = [ w1; w2; w3 ] in
  (* Identical prefix: zero. *)
  Alcotest.(check bool) "prefix 0" true (feq (Metrics.order_error_lcp ~ecg ~local:[ w1; w2 ] "a") 0.0);
  (* Swapped order: both beyond the (empty) common prefix. *)
  Alcotest.(check bool) "swap costs 2" true
    (feq (Metrics.order_error_lcp ~ecg ~local:[ w2; w1 ] "a") 2.0);
  (* Missing middle write: the tail mismatches. *)
  Alcotest.(check bool) "gap costs tail" true
    (feq (Metrics.order_error_lcp ~ecg ~local:[ w1; w3 ] "a") 1.0);
  (* Other conits don't contribute. *)
  Alcotest.(check bool) "other conit" true
    (feq (Metrics.order_error_lcp ~ecg ~local:[ w2; w1 ] "z") 0.0)

let test_metrics_oe_tentative () =
  let ws = [ w ~ow:2.0 ~origin:0 ~seq:1 ~t:1.0 [ "a" ]; w ~ow:3.0 ~origin:0 ~seq:2 ~t:2.0 [ "b" ] ] in
  Alcotest.(check bool) "sums affecting only" true
    (feq (Metrics.order_error_tentative ~tentative:ws "a") 2.0);
  Alcotest.(check bool) "empty 0" true (feq (Metrics.order_error_tentative ~tentative:[] "a") 0.0)

let test_metrics_staleness () =
  let unseen = [ w ~origin:0 ~seq:1 ~t:3.0 [ "a" ]; w ~origin:1 ~seq:1 ~t:7.0 [ "a" ] ] in
  Alcotest.(check bool) "oldest unseen" true (feq (Metrics.staleness ~now:10.0 ~unseen "a") 7.0);
  Alcotest.(check bool) "nothing unseen" true (feq (Metrics.staleness ~now:10.0 ~unseen:[] "a") 0.0);
  Alcotest.(check bool) "other conit" true (feq (Metrics.staleness ~now:10.0 ~unseen "z") 0.0)

(* OE-lcp <= OE-tentative when the local history is committed-prefix ++
   ts-ordered tentative over the canonical ECG (the stability invariant). *)
let test_oe_lcp_le_tentative =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"oe_lcp <= oe_tentative under stability order" ~count:200
       QCheck.(pair (int_bound 1000) (int_bound 10))
       (fun (seed, cut) ->
         let rng = Tact_util.Prng.create ~seed in
         let all =
           List.init 12 (fun i ->
               w ~origin:(Tact_util.Prng.int rng 3) ~seq:(i + 1)
                 ~t:(float_of_int (i + 1))
                 (if Tact_util.Prng.bool rng then [ "a" ] else [ "b" ]))
         in
         let ecg = Ecg.canonical all in
         (* The replica knows a subset that includes the full prefix up to
            [cut] (committed) plus some random later writes (tentative). *)
         let committed = List.filteri (fun i _ -> i < cut) ecg in
         let tentative =
           List.filteri (fun i _ -> i >= cut) ecg
           |> List.filter (fun _ -> Tact_util.Prng.bool rng)
         in
         let local = committed @ tentative in
         Metrics.order_error_lcp ~ecg ~local "a"
         <= Metrics.order_error_tentative ~tentative "a" +. 1e-9))

(* --- Ecg ------------------------------------------------------------- *)

let test_ecg_canonical_sorted () =
  let ws =
    [ w ~origin:1 ~seq:1 ~t:3.0 [ "a" ]; w ~origin:0 ~seq:1 ~t:1.0 [ "a" ];
      w ~origin:2 ~seq:1 ~t:2.0 [ "a" ] ]
  in
  Alcotest.(check (list (float 1e-9))) "sorted by time" [ 1.0; 2.0; 3.0 ]
    (List.map (fun (x : Write.t) -> x.Write.accept_time) (Ecg.canonical ws))

let test_ecg_actual_prefix () =
  let w1 = w ~origin:0 ~seq:1 ~t:1.0 [ "a" ] in
  let w2 = w ~origin:1 ~seq:1 ~t:2.0 [ "a" ] in
  let w3 = w ~origin:2 ~seq:1 ~t:3.0 [ "a" ] in
  let all = [ w1; w2; w3 ] in
  let return_time (id : Write.id) = float_of_int id.Write.origin +. 1.0 in
  (* stime 2.5: w1 returned (t=1), w2 returned (t=2); w3 not (t=3).
     Observed: only w3 (e.g. pushed early). *)
  let prefix =
    Ecg.actual_prefix ~all ~return_time ~stime:2.5
      ~observed:(fun id -> id.Write.origin = 2)
  in
  Alcotest.(check (list int)) "returned + observed" [ 0; 1; 2 ]
    (List.map (fun (x : Write.t) -> x.Write.id.Write.origin) prefix)

let test_ecg_external_compatibility () =
  let w1 = w ~origin:0 ~seq:1 ~t:1.0 [ "a" ] in
  let w2 = w ~origin:1 ~seq:1 ~t:5.0 [ "a" ] in
  let return_time (id : Write.id) = if id.Write.origin = 0 then 2.0 else 6.0 in
  Alcotest.(check bool) "good order" true
    (Ecg.externally_compatible ~order:[ w1; w2 ] ~return_time);
  (* w1 returned (2.0) before w2 accepted (5.0) so w2 cannot precede it. *)
  Alcotest.(check bool) "bad order" false
    (Ecg.externally_compatible ~order:[ w2; w1 ] ~return_time);
  (* Concurrent writes may appear in either order. *)
  let return_time_late (id : Write.id) = if id.Write.origin = 0 then 9.0 else 6.0 in
  Alcotest.(check bool) "concurrent either way" true
    (Ecg.externally_compatible ~order:[ w2; w1 ] ~return_time:return_time_late)

let test_ecg_causal_compatibility () =
  let w1 = w ~origin:0 ~seq:1 ~t:1.0 [ "a" ] in
  let w2 = w ~origin:1 ~seq:1 ~t:2.0 [ "a" ] in
  (* w2's origin had seen w1 when accepting it. *)
  let accept_vector (id : Write.id) =
    let v = Version_vector.create 2 in
    if id.Write.origin = 1 then Version_vector.set v 0 1;
    v
  in
  Alcotest.(check bool) "causal order ok" true
    (Ecg.causally_compatible ~order:[ w1; w2 ] ~accept_vector);
  Alcotest.(check bool) "causal violation flagged" false
    (Ecg.causally_compatible ~order:[ w2; w1 ] ~accept_vector)

(* --- Access ------------------------------------------------------------ *)

let test_access_deps () =
  let a =
    {
      Access.kind = Access.Read;
      replica = 0;
      submit_time = 1.0;
      serve_time = 1.0;
      return_time = 1.0;
      deps = [ { Access.conit = "a"; bound = Bounds.strong } ];
      observed_vector = Version_vector.create 2;
      observed_tentative = [];
      observed_local = lazy [];
      observed_result = Value.Nil;
    }
  in
  Alcotest.(check bool) "depends" true (Access.depends_on a "a");
  Alcotest.(check bool) "not depends" false (Access.depends_on a "b");
  Alcotest.(check bool) "bound lookup" true
    (Access.bound_for a "a" = Some Bounds.strong && Access.bound_for a "b" = None)

(* --- Figure 4 exactness -------------------------------------------------- *)

let test_fig4_numbers () =
  let o = Tact_experiments.E01_fig4.compute () in
  Alcotest.(check bool) "NE(F1)=1" true (feq o.ne_f1 1.0);
  Alcotest.(check bool) "OE(F1)=1" true (feq o.oe_f1 1.0);
  Alcotest.(check bool) "ST(F1)=stime-rtime(W5)=1" true (feq o.st_f1 1.0);
  Alcotest.(check bool) "NE(F2)=0" true (feq o.ne_f2 0.0);
  Alcotest.(check bool) "OE(F2)=1" true (feq o.oe_f2 1.0);
  Alcotest.(check bool) "ST(F2)=0" true (feq o.st_f2 0.0)

let suite =
  [
    Alcotest.test_case "bounds extremes" `Quick test_bounds_extremes;
    Alcotest.test_case "bounds within" `Quick test_bounds_within;
    Alcotest.test_case "bounds tighten" `Quick test_bounds_tighten;
    Alcotest.test_case "bounds to_string" `Quick test_bounds_to_string;
    Alcotest.test_case "conit declare" `Quick test_conit_declare;
    Alcotest.test_case "metrics value" `Quick test_metrics_value;
    Alcotest.test_case "metrics NE" `Quick test_metrics_numerical_error;
    Alcotest.test_case "metrics relative edges" `Quick test_metrics_relative_edge;
    Alcotest.test_case "metrics projection" `Quick test_metrics_projection;
    Alcotest.test_case "metrics OE lcp" `Quick test_metrics_oe_lcp;
    Alcotest.test_case "metrics OE tentative" `Quick test_metrics_oe_tentative;
    Alcotest.test_case "metrics staleness" `Quick test_metrics_staleness;
    test_oe_lcp_le_tentative;
    Alcotest.test_case "ecg canonical" `Quick test_ecg_canonical_sorted;
    Alcotest.test_case "ecg actual prefix" `Quick test_ecg_actual_prefix;
    Alcotest.test_case "ecg external compat" `Quick test_ecg_external_compatibility;
    Alcotest.test_case "ecg causal compat" `Quick test_ecg_causal_compatibility;
    Alcotest.test_case "access deps" `Quick test_access_deps;
    Alcotest.test_case "figure 4 numbers" `Quick test_fig4_numbers;
  ]
