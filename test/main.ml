let () =
  Alcotest.run "tact"
    [
      ("prng", Test_prng.suite);
      ("pool", Test_pool.suite);
      ("stats-util", Test_stats.suite);
      ("sim", Test_sim.suite);
      ("store", Test_store.suite);
      ("wlog", Test_wlog.suite);
      ("wlog-model", Test_wlog_model.suite);
      ("codec", Test_codec.suite);
      ("batch", Test_batch.suite);
      ("core-model", Test_core_model.suite);
      ("protocols", Test_protocols.suite);
      ("replica", Test_replica.suite);
      ("truncation", Test_truncation.suite);
      ("sessions", Test_sessions.suite);
      ("crash", Test_crash.suite);
      ("trace", Test_trace.suite);
      ("analytic", Test_analytic.suite);
      ("edge", Test_edge.suite);
      ("scenario", Test_scenario.suite);
      ("spec", Test_spec.suite);
      ("verify", Test_verify.suite);
      ("soak", Test_soak.suite);
      ("models", Test_models.suite);
      ("apps", Test_apps.suite);
      ("experiments", Test_experiments.suite);
      ("analysis", Test_analysis.suite);
      ("sanitize", Test_sanitize.suite);
      ("check", Test_check.suite);
      ("shard", Test_shard.suite);
      ("nemesis", Test_nemesis.suite);
      ("strip", Test_strip.suite);
      ("staticcheck", Test_staticcheck.suite);
      ("effects", Test_effects.suite);
      ("smoke", Test_smoke.suite);
    ]
