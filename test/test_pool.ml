(* Work-stealing pool: ordering, exception propagation, nested submission,
   and empty-batch edge cases. *)

open Tact_util

exception Boom of int

let test_map_order () =
  Pool.with_pool ~jobs:4 (fun p ->
      (* Uneven workloads: results must still come back in input order. *)
      let xs = List.init 100 (fun i -> i) in
      let spin n =
        let acc = ref 0 in
        for i = 1 to (n mod 7) * 1000 do
          acc := !acc + i
        done;
        ignore !acc;
        n * n
      in
      let ys = Pool.map_list p spin xs in
      Alcotest.(check (list int)) "squares in order"
        (List.map (fun i -> i * i) xs)
        ys)

let test_map_array_order_and_failure () =
  Pool.with_pool ~jobs:4 (fun p ->
      let xs = Array.init 64 (fun i -> i) in
      let ys = Pool.map_array p (fun i -> i * i) xs in
      Alcotest.(check (array int)) "squares in order"
        (Array.map (fun i -> i * i) xs)
        ys;
      (* Earliest failing element wins, regardless of completion order. *)
      Alcotest.check_raises "earliest element's exception" (Boom 3) (fun () ->
          ignore
            (Pool.map_array p
               (fun i -> if i >= 3 then raise (Boom i) else i)
               xs)))

let test_await_exception () =
  Pool.with_pool ~jobs:2 (fun p ->
      let ok = Pool.submit p (fun () -> 41 + 1) in
      let bad = Pool.submit p (fun () -> raise (Boom 7)) in
      Alcotest.(check int) "healthy future" 42 (Pool.await p ok);
      Alcotest.check_raises "await re-raises" (Boom 7) (fun () ->
          ignore (Pool.await p bad)))

let test_map_list_first_failure () =
  Pool.with_pool ~jobs:4 (fun p ->
      (* Several elements fail; map_list must deterministically surface the
         earliest one in input order. *)
      match
        Pool.map_list p
          (fun i -> if i mod 10 = 3 then raise (Boom i) else i)
          (List.init 50 (fun i -> i))
      with
      | _ -> Alcotest.fail "expected a failure"
      | exception Boom 3 -> ()
      | exception Boom n -> Alcotest.failf "raised Boom %d, wanted Boom 3" n)

let test_post_error_at_idle () =
  Pool.with_pool ~jobs:2 (fun p ->
      Pool.post p (fun () -> ());
      Pool.post p (fun () -> raise (Boom 1));
      Alcotest.check_raises "await_idle re-raises the post error" (Boom 1)
        (fun () -> Pool.await_idle p);
      (* The error is consumed: the pool is reusable afterwards. *)
      Pool.post p (fun () -> ());
      Pool.await_idle p)

let test_nested_submit () =
  Pool.with_pool ~jobs:3 (fun p ->
      (* A task fans out subtasks and awaits them from inside the pool:
         await must help rather than deadlock, even with jobs:1. *)
      let fut =
        Pool.submit p (fun () ->
            let subs =
              List.init 20 (fun i -> Pool.submit p (fun () -> i * 2))
            in
            List.fold_left (fun acc f -> acc + Pool.await p f) 0 subs)
      in
      Alcotest.(check int) "sum of doubles" 380 (Pool.await p fut));
  Pool.with_pool ~jobs:1 (fun p ->
      let fut =
        Pool.submit p (fun () ->
            let a = Pool.submit p (fun () -> 10) in
            let b = Pool.submit p (fun () -> 20) in
            Pool.await p a + Pool.await p b)
      in
      Alcotest.(check int) "nested on a single worker" 30 (Pool.await p fut))

let test_recursive_fanout () =
  (* Tree-shaped fan-out through post (the explorer's shape): every node
     posts its children; await_idle must cover transitively submitted work. *)
  Pool.with_pool ~jobs:4 (fun p ->
      let count = Sync.Counter.make () in
      let rec node depth () =
        ignore (Sync.Counter.incr count);
        if depth > 0 then
          for _ = 1 to 3 do
            Pool.post p (node (depth - 1))
          done
      in
      Pool.post p (node 6);
      Pool.await_idle p;
      (* 3^0 + ... + 3^6 = 1093 *)
      Alcotest.(check int) "all tree nodes ran" 1093 (Sync.Counter.get count))

let test_empty () =
  Pool.with_pool ~jobs:2 (fun p ->
      Pool.await_idle p;
      Alcotest.(check (list int)) "empty map_list" [] (Pool.map_list p (fun x -> x) []);
      Pool.await_idle p);
  (* jobs below 1 clamps to a single worker rather than failing *)
  Pool.with_pool ~jobs:0 (fun p ->
      Alcotest.(check int) "clamped size" 1 (Pool.size p);
      Alcotest.(check (list int)) "still works" [ 2; 4 ]
        (Pool.map_list p (fun x -> 2 * x) [ 1; 2 ]))

let test_shutdown_rejects () =
  let p = Pool.create ~jobs:2 in
  Pool.shutdown p;
  Pool.shutdown p (* idempotent *);
  match Pool.submit p (fun () -> ()) with
  | _ -> Alcotest.fail "submit after shutdown must fail"
  | exception Invalid_argument _ -> ()

let test_sync_primitives () =
  Pool.with_pool ~jobs:4 (fun p ->
      let c = Sync.Counter.make () in
      let cell = Sync.Cell.make 0 in
      let m = Sync.Map.create ~shards:8 64 in
      List.iter
        (fun f -> Pool.post p f)
        (List.init 200 (fun i () ->
             ignore (Sync.Counter.incr c);
             Sync.Cell.update cell (fun v -> v + 1);
             Sync.Map.update m (i mod 32) (function
               | None -> Some 1
               | Some n -> Some (n + 1))));
      Pool.await_idle p;
      Alcotest.(check int) "counter" 200 (Sync.Counter.get c);
      Alcotest.(check int) "cell" 200 (Sync.Cell.get cell);
      Alcotest.(check int) "map keys" 32 (Sync.Map.length m);
      let total = ref 0 in
      for k = 0 to 31 do
        match Sync.Map.find_opt m k with
        | Some n -> total := !total + n
        | None -> Alcotest.failf "key %d missing" k
      done;
      Alcotest.(check int) "map total" 200 !total)

let suite =
  [
    Alcotest.test_case "map_list preserves order" `Quick test_map_order;
    Alcotest.test_case "map_array order and earliest failure" `Quick
      test_map_array_order_and_failure;
    Alcotest.test_case "await re-raises task exceptions" `Quick
      test_await_exception;
    Alcotest.test_case "map_list surfaces earliest failure" `Quick
      test_map_list_first_failure;
    Alcotest.test_case "post errors surface at await_idle" `Quick
      test_post_error_at_idle;
    Alcotest.test_case "nested submit helps instead of deadlocking" `Quick
      test_nested_submit;
    Alcotest.test_case "recursive fan-out drains transitively" `Quick
      test_recursive_fanout;
    Alcotest.test_case "empty batches and clamped sizes" `Quick test_empty;
    Alcotest.test_case "shutdown is idempotent and final" `Quick
      test_shutdown_rejects;
    Alcotest.test_case "sync primitives under contention" `Quick
      test_sync_primitives;
  ]
