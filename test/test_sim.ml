(* Discrete-event engine, heap, topology and network model. *)

open Tact_sim

let feq ?(eps = 1e-9) a b = Float.abs (a -. b) < eps

(* --- heap ----------------------------------------------------------- *)

let test_heap_order () =
  let h = Heap.create () in
  List.iteri
    (fun i t -> Heap.push h ~time:t ~seq:i i)
    [ 5.0; 1.0; 3.0; 2.0; 4.0 ];
  let order = ref [] in
  let rec drain () =
    match Heap.pop h with
    | Some (t, _, _) ->
      order := t :: !order;
      drain ()
    | None -> ()
  in
  drain ();
  Alcotest.(check (list (float 1e-9))) "ascending" [ 1.0; 2.0; 3.0; 4.0; 5.0 ]
    (List.rev !order)

let test_heap_tiebreak () =
  let h = Heap.create () in
  for i = 0 to 9 do
    Heap.push h ~time:1.0 ~seq:i i
  done;
  let order = ref [] in
  let rec drain () =
    match Heap.pop h with
    | Some (_, _, v) ->
      order := v :: !order;
      drain ()
    | None -> ()
  in
  drain ();
  Alcotest.(check (list int)) "fifo among ties" [ 0; 1; 2; 3; 4; 5; 6; 7; 8; 9 ]
    (List.rev !order)

let test_heap_empty () =
  let h : int Heap.t = Heap.create () in
  Alcotest.(check bool) "empty" true (Heap.is_empty h);
  Alcotest.(check bool) "pop none" true (Heap.pop h = None);
  Alcotest.(check bool) "peek none" true (Heap.peek_time h = None)

let test_heap_random_drain_sorted =
  let prop =
    QCheck.Test.make ~name:"heap drains sorted" ~count:200
      QCheck.(list (pair (float_bound_exclusive 1000.0) small_nat))
      (fun entries ->
        let h = Heap.create () in
        List.iteri (fun i (t, v) -> Heap.push h ~time:t ~seq:i v) entries;
        let rec drain acc =
          match Heap.pop h with
          | Some (t, _, _) -> drain (t :: acc)
          | None -> List.rev acc
        in
        let times = drain [] in
        let rec sorted = function
          | a :: (b :: _ as tl) -> a <= b && sorted tl
          | _ -> true
        in
        sorted times && List.length times = List.length entries)
  in
  QCheck_alcotest.to_alcotest prop

(* --- engine --------------------------------------------------------- *)

let test_engine_runs_in_order () =
  let e = Engine.create () in
  let log = ref [] in
  Engine.schedule e ~delay:2.0 (fun () -> log := 2 :: !log);
  Engine.schedule e ~delay:1.0 (fun () -> log := 1 :: !log);
  Engine.schedule e ~delay:3.0 (fun () -> log := 3 :: !log);
  Engine.run e;
  Alcotest.(check (list int)) "temporal order" [ 1; 2; 3 ] (List.rev !log);
  Alcotest.(check bool) "clock advanced" true (feq (Engine.now e) 3.0)

let test_engine_simultaneous_fifo () =
  let e = Engine.create () in
  let log = ref [] in
  for i = 1 to 5 do
    Engine.schedule e ~delay:1.0 (fun () -> log := i :: !log)
  done;
  Engine.run e;
  Alcotest.(check (list int)) "scheduling order preserved" [ 1; 2; 3; 4; 5 ]
    (List.rev !log)

let test_engine_nested_scheduling () =
  let e = Engine.create () in
  let fired = ref 0.0 in
  Engine.schedule e ~delay:1.0 (fun () ->
      Engine.schedule e ~delay:1.5 (fun () -> fired := Engine.now e));
  Engine.run e;
  Alcotest.(check bool) "nested event at 2.5" true (feq !fired 2.5)

let test_engine_until () =
  let e = Engine.create () in
  let count = ref 0 in
  for i = 1 to 10 do
    Engine.schedule e ~delay:(float_of_int i) (fun () -> incr count)
  done;
  Engine.run ~until:5.5 e;
  Alcotest.(check int) "only five fired" 5 !count;
  Alcotest.(check bool) "clock at horizon" true (feq (Engine.now e) 5.5);
  Engine.run e;
  Alcotest.(check int) "remaining fire on resume" 10 !count

let test_engine_at_past_rejected () =
  let e = Engine.create () in
  Engine.schedule e ~delay:1.0 (fun () ->
      Alcotest.check_raises "past time"
        (Invalid_argument "Engine.at: time 0.5 is in the past (now 1)")
        (fun () -> Engine.at e ~time:0.5 ignore));
  Engine.run e

let test_engine_negative_delay_rejected () =
  let e = Engine.create () in
  Alcotest.check_raises "negative delay"
    (Invalid_argument "Engine.schedule: negative delay") (fun () ->
      Engine.schedule e ~delay:(-1.0) ignore)

let test_engine_every () =
  let e = Engine.create () in
  let ticks = ref 0 in
  Engine.every e ~period:1.0 (fun () ->
      incr ticks;
      !ticks < 5);
  Engine.run e;
  Alcotest.(check int) "five ticks" 5 !ticks;
  Alcotest.(check bool) "stopped at t=5" true (feq (Engine.now e) 5.0)

let test_engine_max_events () =
  let e = Engine.create () in
  let rec forever () = Engine.schedule e ~delay:1.0 forever in
  forever ();
  Alcotest.(check bool) "runaway guard" true
    (try
       Engine.run ~max_events:100 e;
       false
     with Engine.Runaway n -> n = 100);
  (* The guard fires before dispatch, so the offending event is still queued
     and the run can resume under a fresh budget. *)
  Alcotest.(check int) "raised before dispatch" 100 (Engine.events_executed e);
  Alcotest.(check bool) "resumable" true
    (try
       Engine.run ~max_events:150 e;
       false
     with Engine.Runaway n -> n = 150)

let test_engine_every_negative_jitter () =
  (* Regression: a jitter draw more negative than the period used to produce
     a net-negative delay and trip the Engine.schedule guard.  Now the delay
     clamps at zero, so the loop keeps ticking at time 0. *)
  let e = Engine.create () in
  let ticks = ref 0 in
  Engine.every e ~period:1.0
    ~jitter:(fun () -> -5.0)
    (fun () ->
      incr ticks;
      !ticks < 3);
  Engine.run e;
  Alcotest.(check int) "three ticks despite negative jitter" 3 !ticks;
  Alcotest.(check bool) "clamped delays keep clock at zero" true
    (feq (Engine.now e) 0.0)

(* --- topology ------------------------------------------------------- *)

let test_topology_uniform () =
  let t = Topology.uniform ~n:4 ~latency:0.05 ~bandwidth:1000.0 in
  Alcotest.(check bool) "self zero" true (feq (Topology.delay t ~src:1 ~dst:1 ~size:100) 0.0);
  (* 0.05 propagation + 100/1000 serialisation *)
  Alcotest.(check bool) "delay = latency + size/bw" true
    (feq (Topology.delay t ~src:0 ~dst:1 ~size:100) 0.15)

let test_topology_clustered () =
  let t = Topology.clustered ~clusters:2 ~per_cluster:2 ~local:0.001 ~wan:0.1 ~bandwidth:1e9 in
  Alcotest.(check int) "size" 4 t.Topology.n;
  Alcotest.(check bool) "intra cheap" true (t.Topology.latency 0 1 < 0.01);
  Alcotest.(check bool) "inter expensive" true (t.Topology.latency 0 2 > 0.05)

let test_topology_star () =
  let t = Topology.star ~n:4 ~spoke:0.02 ~bandwidth:1e9 in
  Alcotest.(check bool) "hub-spoke" true (feq (t.Topology.latency 0 3) 0.02);
  Alcotest.(check bool) "spoke-spoke doubles" true (feq (t.Topology.latency 1 3) 0.04)

let test_topology_matrix () =
  let m = [| [| 0.0; 0.5 |]; [| 0.25; 0.0 |] |] in
  let t = Topology.from_matrix ~latency:m ~bandwidth:1e9 in
  Alcotest.(check bool) "asymmetric ok" true
    (feq (t.Topology.latency 0 1) 0.5 && feq (t.Topology.latency 1 0) 0.25)

(* --- net ------------------------------------------------------------- *)

let test_net_delivery_and_stats () =
  let e = Engine.create () in
  let net = Net.create e (Topology.uniform ~n:2 ~latency:0.1 ~bandwidth:1e6) () in
  let got = ref nan in
  Net.send net ~src:0 ~dst:1 ~size:1000 (fun () -> got := Engine.now e);
  Engine.run e;
  Alcotest.(check bool) "delivered at latency+ser" true (feq !got 0.101);
  let s = Net.stats net in
  Alcotest.(check int) "1 message" 1 s.Net.messages;
  Alcotest.(check int) "1000 bytes" 1000 s.Net.bytes;
  Alcotest.(check int) "0 dropped" 0 s.Net.dropped

let test_net_partition_drops () =
  let e = Engine.create () in
  let net = Net.create e (Topology.uniform ~n:3 ~latency:0.1 ~bandwidth:1e6) () in
  Net.partition net [ 0 ] [ 1 ];
  let delivered = ref 0 in
  Net.send net ~src:0 ~dst:1 ~size:10 (fun () -> incr delivered);
  Net.send net ~src:1 ~dst:0 ~size:10 (fun () -> incr delivered);
  Net.send net ~src:0 ~dst:2 ~size:10 (fun () -> incr delivered);
  Engine.run e;
  Alcotest.(check int) "only unpartitioned pair delivers" 1 !delivered;
  Alcotest.(check int) "two dropped" 2 (Net.stats net).Net.dropped;
  Net.heal net;
  Net.send net ~src:0 ~dst:1 ~size:10 (fun () -> incr delivered);
  Engine.run e;
  Alcotest.(check int) "healed" 2 !delivered

let test_net_jitter_bounded () =
  let e = Engine.create () in
  let rng = Tact_util.Prng.create ~seed:5 in
  let net =
    Net.create e (Topology.uniform ~n:2 ~latency:0.1 ~bandwidth:1e9)
      ~jitter:(rng, 0.5) ()
  in
  for _ = 1 to 50 do
    Net.send net ~src:0 ~dst:1 ~size:0 ignore
  done;
  (* All deliveries within [0.1, 0.15). *)
  let ok = ref true in
  let last = ref 0.0 in
  Engine.run e;
  ignore last;
  ignore ok;
  Alcotest.(check bool) "clock within jitter window" true
    (Engine.now e >= 0.1 && Engine.now e < 0.15)

let test_net_reset_stats () =
  let e = Engine.create () in
  let net = Net.create e (Topology.uniform ~n:2 ~latency:0.1 ~bandwidth:1e6) () in
  Net.send net ~src:0 ~dst:1 ~size:10 ignore;
  Net.reset_stats net;
  Alcotest.(check int) "reset" 0 (Net.stats net).Net.messages

(* run_group: several independent engines drain to the same state whether
   run sequentially or across pool domains. *)
let test_run_group_matches_sequential () =
  let build () =
    Array.init 6 (fun k ->
        let e = Engine.create () in
        let acc = ref 0.0 in
        for i = 1 to 50 do
          Engine.at e ~time:(float_of_int i *. 0.1) (fun () ->
              acc := !acc +. (float_of_int (k + 1) *. Engine.now e))
        done;
        (e, acc))
  in
  let seq = build () and par = build () in
  Engine.run_group ~until:4.0 (Array.map fst seq);
  Tact_util.Pool.with_pool ~jobs:4 (fun pool ->
      Engine.run_group ~pool ~until:4.0 (Array.map fst par));
  Array.iteri
    (fun k (e, acc) ->
      let ep, accp = par.(k) in
      Alcotest.(check bool) "same clock" true (feq (Engine.now e) (Engine.now ep));
      Alcotest.(check int) "same event count" (Engine.events_executed e)
        (Engine.events_executed ep);
      Alcotest.(check bool) "same accumulated state" true (feq !acc !accp))
    seq

let base_suite =
  [
    Alcotest.test_case "run_group parallel == sequential" `Quick
      test_run_group_matches_sequential;
    Alcotest.test_case "heap order" `Quick test_heap_order;
    Alcotest.test_case "heap tiebreak" `Quick test_heap_tiebreak;
    Alcotest.test_case "heap empty" `Quick test_heap_empty;
    test_heap_random_drain_sorted;
    Alcotest.test_case "engine temporal order" `Quick test_engine_runs_in_order;
    Alcotest.test_case "engine simultaneous fifo" `Quick test_engine_simultaneous_fifo;
    Alcotest.test_case "engine nested" `Quick test_engine_nested_scheduling;
    Alcotest.test_case "engine until/resume" `Quick test_engine_until;
    Alcotest.test_case "engine past rejected" `Quick test_engine_at_past_rejected;
    Alcotest.test_case "engine negative delay" `Quick test_engine_negative_delay_rejected;
    Alcotest.test_case "engine every" `Quick test_engine_every;
    Alcotest.test_case "engine runaway guard" `Quick test_engine_max_events;
    Alcotest.test_case "engine every negative jitter" `Quick
      test_engine_every_negative_jitter;
    Alcotest.test_case "topology uniform" `Quick test_topology_uniform;
    Alcotest.test_case "topology clustered" `Quick test_topology_clustered;
    Alcotest.test_case "topology star" `Quick test_topology_star;
    Alcotest.test_case "topology matrix" `Quick test_topology_matrix;
    Alcotest.test_case "net delivery+stats" `Quick test_net_delivery_and_stats;
    Alcotest.test_case "net partition" `Quick test_net_partition_drops;
    Alcotest.test_case "net jitter bounded" `Quick test_net_jitter_bounded;
    Alcotest.test_case "net reset stats" `Quick test_net_reset_stats;
  ]

let test_net_queued_links () =
  let e = Engine.create () in
  (* 1000 B/s link, 0.1s propagation: two 100-byte messages sent together. *)
  let net =
    Net.create e (Topology.uniform ~n:2 ~latency:0.1 ~bandwidth:1000.0)
      ~queued:true ()
  in
  let t1 = ref nan and t2 = ref nan in
  Net.send net ~src:0 ~dst:1 ~size:100 (fun () -> t1 := Engine.now e);
  Net.send net ~src:0 ~dst:1 ~size:100 (fun () -> t2 := Engine.now e);
  Engine.run e;
  (* First: 0.1s ser + 0.1s prop = 0.2; second queues behind: 0.2s ser. *)
  Alcotest.(check bool) "first at 0.2" true (feq !t1 0.2);
  Alcotest.(check bool) "second queued to 0.3" true (feq !t2 0.3)

let test_net_queued_independent_links () =
  let e = Engine.create () in
  let net =
    Net.create e (Topology.uniform ~n:3 ~latency:0.1 ~bandwidth:1000.0)
      ~queued:true ()
  in
  let t1 = ref nan and t2 = ref nan in
  (* Different destinations: no contention. *)
  Net.send net ~src:0 ~dst:1 ~size:100 (fun () -> t1 := Engine.now e);
  Net.send net ~src:0 ~dst:2 ~size:100 (fun () -> t2 := Engine.now e);
  Engine.run e;
  Alcotest.(check bool) "both at 0.2" true (feq !t1 0.2 && feq !t2 0.2)

let queued_suite =
  [
    Alcotest.test_case "queued link serialises" `Quick test_net_queued_links;
    Alcotest.test_case "queued links independent" `Quick test_net_queued_independent_links;
  ]



let test_traffic_where () =
  let e = Engine.create () in
  let net = Net.create e (Topology.uniform ~n:3 ~latency:0.01 ~bandwidth:1e9) () in
  Net.send net ~src:0 ~dst:1 ~size:100 ignore;
  Net.send net ~src:1 ~dst:2 ~size:50 ignore;
  Net.send net ~src:2 ~dst:0 ~size:25 ignore;
  Engine.run e;
  let from0 = Net.traffic_where net (fun ~src ~dst -> ignore dst; src = 0) in
  Alcotest.(check int) "from 0: 1 msg" 1 from0.Net.messages;
  Alcotest.(check int) "from 0: 100 bytes" 100 from0.Net.bytes;
  let all = Net.traffic_where net (fun ~src:_ ~dst:_ -> true) in
  Alcotest.(check int) "split sums to total" (Net.stats net).Net.bytes all.Net.bytes

let traffic_suite =
  [ Alcotest.test_case "traffic_where split" `Quick test_traffic_where ]

(* --- fault primitives (nemesis substrate) ----------------------------- *)

let test_net_oneway_partition () =
  let e = Engine.create () in
  let net = Net.create e (Topology.uniform ~n:2 ~latency:0.01 ~bandwidth:1e9) () in
  Net.partition_oneway net [ 0 ] [ 1 ];
  let fwd = ref 0 and back = ref 0 in
  Net.send net ~src:0 ~dst:1 ~size:10 (fun () -> incr fwd);
  Net.send net ~src:1 ~dst:0 ~size:10 (fun () -> incr back);
  Engine.run e;
  Alcotest.(check int) "forward dropped" 0 !fwd;
  Alcotest.(check int) "reverse flows" 1 !back;
  Net.heal_between net [ 0 ] [ 1 ];
  Net.send net ~src:0 ~dst:1 ~size:10 (fun () -> incr fwd);
  Engine.run e;
  Alcotest.(check int) "healed forward" 1 !fwd

let test_net_heal_between_targeted () =
  let e = Engine.create () in
  let net = Net.create e (Topology.uniform ~n:3 ~latency:0.01 ~bandwidth:1e9) () in
  Net.partition net [ 0 ] [ 1 ];
  Net.partition net [ 0 ] [ 2 ];
  Net.heal_between net [ 0 ] [ 1 ];
  Alcotest.(check bool) "0-1 healed" false (Net.partitioned net 0 1);
  Alcotest.(check bool) "1-0 healed" false (Net.partitioned net 1 0);
  Alcotest.(check bool) "0-2 still cut" true (Net.partitioned net 0 2);
  Net.heal net;
  Alcotest.(check bool) "heal-all clears the rest" false (Net.partitioned net 0 2)

let test_net_drop_accounting () =
  let e = Engine.create () in
  let net = Net.create e (Topology.uniform ~n:2 ~latency:0.01 ~bandwidth:1e9) () in
  Net.partition net [ 0 ] [ 1 ];
  Net.send net ~src:0 ~dst:1 ~size:10 ignore;
  Net.heal net;
  let rng = Tact_util.Prng.create ~seed:3 in
  Net.set_loss net (Some (rng, 1.0));
  Net.send net ~src:0 ~dst:1 ~size:10 ignore;
  Net.set_loss net None;
  Net.send net ~src:0 ~dst:1 ~size:10 ignore;
  Engine.run e;
  let s = Net.stats net in
  Alcotest.(check int) "1 cut drop" 1 s.Net.dropped_cut;
  Alcotest.(check int) "1 loss drop" 1 s.Net.dropped_loss;
  Alcotest.(check int) "total is the sum" 2 s.Net.dropped;
  (* Satellite: per-link drops feed traffic_where instead of reading 0. *)
  let link01 = Net.traffic_where net (fun ~src ~dst -> src = 0 && dst = 1) in
  Alcotest.(check int) "per-link drops tracked" 2 link01.Net.dropped;
  Alcotest.(check int) "per-link delivery tracked" 1 link01.Net.messages

let test_net_link_loss_directed () =
  let e = Engine.create () in
  let net = Net.create e (Topology.uniform ~n:2 ~latency:0.01 ~bandwidth:1e9) () in
  let rng = Tact_util.Prng.create ~seed:3 in
  Net.set_link_loss net ~src:0 ~dst:1 (Some (rng, 1.0));
  let fwd = ref 0 and back = ref 0 in
  Net.send net ~src:0 ~dst:1 ~size:10 (fun () -> incr fwd);
  Net.send net ~src:1 ~dst:0 ~size:10 (fun () -> incr back);
  Engine.run e;
  Alcotest.(check int) "lossy direction drops" 0 !fwd;
  Alcotest.(check int) "other direction flows" 1 !back;
  Net.set_link_loss net ~src:0 ~dst:1 None;
  Net.send net ~src:0 ~dst:1 ~size:10 (fun () -> incr fwd);
  Engine.run e;
  Alcotest.(check int) "cleared" 1 !fwd

let test_net_duplication () =
  let e = Engine.create () in
  let net = Net.create e (Topology.uniform ~n:2 ~latency:0.1 ~bandwidth:1e9) () in
  let rng = Tact_util.Prng.create ~seed:9 in
  Net.set_duplication net (Some (rng, 1.0));
  let times = ref [] in
  Net.send net ~src:0 ~dst:1 ~size:10 (fun () -> times := Engine.now e :: !times);
  Engine.run e;
  (match !times with
  | [ second; first ] ->
    Alcotest.(check bool) "original on time" true
      (feq first (0.1 +. (10.0 /. 1e9)));
    Alcotest.(check bool) "duplicate strictly later" true (second > first)
  | l ->
    Alcotest.failf "expected exactly 2 deliveries, got %d" (List.length l));
  Net.set_duplication net None;
  let count = ref 0 in
  Net.send net ~src:0 ~dst:1 ~size:10 (fun () -> incr count);
  Engine.run e;
  Alcotest.(check int) "disabled again" 1 !count

let test_net_delay_and_bandwidth_factors () =
  let e = Engine.create () in
  (* latency 0.1, 1 MB/s: 1000 bytes = 0.001s serialisation. *)
  let net = Net.create e (Topology.uniform ~n:2 ~latency:0.1 ~bandwidth:1e6) () in
  let t = ref nan in
  Net.set_delay_factor net 2.0;
  Net.send net ~src:0 ~dst:1 ~size:1000 (fun () -> t := Engine.now e);
  Engine.run e;
  Alcotest.(check bool) "delay doubled" true (feq !t 0.202);
  Net.set_delay_factor net 1.0;
  Net.set_bandwidth_factor net 0.5;
  let t2 = ref nan in
  Net.send net ~src:0 ~dst:1 ~size:1000 (fun () -> t2 := Engine.now e);
  Engine.run e;
  Alcotest.(check bool) "bandwidth halved doubles serialisation" true
    (feq (!t2 -. 0.202) (0.1 +. 0.002));
  Net.set_bandwidth_factor net 1.0;
  let t3 = ref nan in
  Net.send net ~src:0 ~dst:1 ~size:1000 (fun () -> t3 := Engine.now e);
  Engine.run e;
  Alcotest.(check bool) "factors 1.0 restore nominal delay" true
    (feq (!t3 -. !t2) 0.101)

let fault_suite =
  [
    Alcotest.test_case "net oneway partition" `Quick test_net_oneway_partition;
    Alcotest.test_case "net heal_between targeted" `Quick test_net_heal_between_targeted;
    Alcotest.test_case "net drop accounting" `Quick test_net_drop_accounting;
    Alcotest.test_case "net per-link loss" `Quick test_net_link_loss_directed;
    Alcotest.test_case "net duplication" `Quick test_net_duplication;
    Alcotest.test_case "net delay/bandwidth factors" `Quick
      test_net_delay_and_bandwidth_factors;
  ]

let suite = base_suite @ queued_suite @ traffic_suite @ fault_suite
