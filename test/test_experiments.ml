(* Shape assertions over the experiment battery: for every table/figure, the
   qualitative result the paper predicts must hold in quick mode too.  (The
   bench harness prints the full tables; these tests pin the shapes.) *)

open Tact_experiments

let test_e2_extremes_shape () =
  let strong = E02_extremes.run_side ~quick:true ~strong:true ~seed:11 () in
  let weak = E02_extremes.run_side ~quick:true ~strong:false ~seed:11 () in
  Alcotest.(check int) "strong: zero anomalies" 0 strong.anomalies;
  Alcotest.(check int) "strong: zero violations" 0 strong.violations;
  Alcotest.(check bool) "strong: ext-compatible commit order" true
    strong.committed_ext_compatible;
  Alcotest.(check bool) "weak: anomalous under concurrency" true (weak.anomalies > 0);
  Alcotest.(check bool) "strong costs latency" true
    (strong.write_latency > weak.write_latency);
  Alcotest.(check bool) "strong costs traffic" true (strong.messages > weak.messages)

let test_e3_airline_shape () =
  let run b =
    Tact_apps.Airline.run ~seed:5 ~n:4 ~flights:2 ~seats:150 ~rate:2.0
      ~duration:25.0 ~ne_rel:b ()
  in
  let tight = run 0.05 and loose = run infinity in
  Alcotest.(check bool) "conflict rate monotone in bound" true
    (tight.conflict_rate <= loose.conflict_rate);
  Alcotest.(check bool) "NE monotone in bound" true
    (tight.mean_rel_ne < loose.mean_rel_ne)

let test_e4_bboard_ne_shape () =
  let run b =
    Tact_apps.Bboard.run ~seed:3 ~n:4 ~post_rate:2.0 ~read_rate:0.5
      ~duration:15.0 ~ne_bound:b ~antientropy:None ()
  in
  let b1 = run 1.0 and b8 = run 8.0 and b32 = run 32.0 in
  Alcotest.(check bool) "traffic falls with bound" true
    (b1.messages > b8.messages && b8.messages >= b32.messages);
  Alcotest.(check bool) "error rises with bound" true
    (b1.mean_observed_ne <= b8.mean_observed_ne
    && b8.mean_observed_ne <= b32.mean_observed_ne +. 1e-9);
  List.iter
    (fun (r : Tact_apps.Bboard.result) ->
      Alcotest.(check int) "no violations" 0 r.violations)
    [ b1; b8; b32 ]

let test_e5_bboard_oe_shape () =
  let run b =
    Tact_apps.Bboard.run ~seed:9 ~n:4 ~post_rate:2.0 ~read_rate:1.0
      ~duration:15.0 ~antientropy:(Some 2.0)
      ~read_bounds:(Tact_core.Bounds.make ~oe:b ()) ()
  in
  let tight = run 0.0 and loose = run infinity in
  Alcotest.(check bool) "tight OE costs read latency" true
    (tight.mean_read_latency > loose.mean_read_latency);
  Alcotest.(check bool) "loose OE reads are local" true
    (loose.mean_read_latency < 1e-9);
  Alcotest.(check int) "tight run clean" 0 tight.violations

let test_e6_bboard_st_shape () =
  let run b =
    Tact_apps.Bboard.run ~seed:21 ~n:4 ~post_rate:2.0 ~read_rate:1.0
      ~duration:15.0 ~antientropy:(Some 5.0)
      ~read_bounds:(Tact_core.Bounds.make ~st:b ()) ()
  in
  let tight = run 0.5 and loose = run infinity in
  Alcotest.(check bool) "tight ST pulls more" true (tight.st_pulls > loose.st_pulls);
  Alcotest.(check bool) "tight ST sees fresher data" true
    (tight.mean_observed_ne <= loose.mean_observed_ne);
  Alcotest.(check int) "tight run clean" 0 tight.violations

let test_e7_qos_shape () =
  let run b = Tact_apps.Qos.run ~seed:7 ~n:4 ~rate:4.0 ~duration:15.0 ~ne_bound:b () in
  let tight = run 1.0 and loose = run infinity in
  Alcotest.(check bool) "routing quality monotone" true
    (tight.misroute_rate < loose.misroute_rate)

let test_e9_all_hold () =
  List.iter
    (fun (r : E09_models.row) ->
      Alcotest.(check bool) (r.model ^ ": " ^ r.property) true r.holds)
    (E09_models.rows ~quick:true ())

let test_e11_budget_shape () =
  (* Rendered output includes all three policies. *)
  let out = E11_budget.run ~quick:true () in
  Alcotest.(check bool) "mentions adaptive" true
    (String.length out > 0
    && List.exists
         (fun line ->
           String.length line >= 8 && String.sub line 0 8 = "adaptive")
         (String.split_on_char '\n' out))

let test_e12_commit_shape () =
  (* Re-run the scenario pair directly for assertions. *)
  let out = E12_commit.run ~quick:true () in
  Alcotest.(check bool) "rendered" true (String.length out > 200)

(* E22 smoke: a scaled-down sweep point must converge with per-replica log
   memory pinned to the truncation horizon — retained committed prefix never
   exceeds [keep], and total held writes stay at horizon + commit lag, far
   below the run's write count. *)
let test_e22_bounded_memory () =
  let r =
    E22_scale.run_one ~n:12 ~writers:1 ~total:8_000 ~keep:300 ~sample:1.0
  in
  Alcotest.(check bool) "converged" true r.converged;
  Alcotest.(check int) "all writes submitted" 8_000 r.writes;
  Alcotest.(check bool) "retained prefix at the horizon" true
    (r.max_retained <= 300);
  Alcotest.(check bool) "held writes bounded by horizon + lag" true
    (r.max_known < 4_000);
  Alcotest.(check bool) "batches flowed" true (r.batches > 0)

(* E23 smoke: a quick sweep point with partial interest must converge per
   interest set with zero cross-shard leaks, and narrowing the overlap must
   cut sync traffic — the partial-replication claim in miniature. *)
let test_e23_partial_replication () =
  let full = E23_shards.run_one ~n:8 ~shards:4 ~overlap:4 ~total:1_500 ~jobs:1 in
  let narrow =
    E23_shards.run_one ~n:8 ~shards:4 ~overlap:1 ~total:1_500 ~jobs:1
  in
  Alcotest.(check bool) "full overlap converged" true full.converged;
  Alcotest.(check bool) "narrow overlap converged" true narrow.converged;
  Alcotest.(check int) "no leaks (full)" 0 full.leaks;
  Alcotest.(check int) "no leaks (narrow)" 0 narrow.leaks;
  Alcotest.(check bool) "membership shrinks with overlap" true
    (narrow.avg_members < full.avg_members);
  Alcotest.(check bool) "traffic falls with overlap" true
    (narrow.messages < full.messages)

let test_registry_complete () =
  Alcotest.(check int) "23 experiments" 23 (List.length Registry.all);
  let found key (e : Registry.entry) =
    match Registry.find key with Some x -> x.id = e.id | None -> false
  in
  List.iter
    (fun (e : Registry.entry) ->
      Alcotest.(check bool) ("find by id " ^ e.id) true (found e.id e);
      Alcotest.(check bool) ("find by name " ^ e.name) true (found e.name e);
      Alcotest.(check bool) "case insensitive" true
        (found (String.lowercase_ascii e.id) e))
    Registry.all;
  Alcotest.(check bool) "unknown rejected" true
    (match Registry.find "E99" with None -> true | Some _ -> false)

let base_suite =
  [
    Alcotest.test_case "E2 extremes shape" `Slow test_e2_extremes_shape;
    Alcotest.test_case "E3 airline shape" `Slow test_e3_airline_shape;
    Alcotest.test_case "E4 bboard NE shape" `Slow test_e4_bboard_ne_shape;
    Alcotest.test_case "E5 bboard OE shape" `Slow test_e5_bboard_oe_shape;
    Alcotest.test_case "E6 bboard ST shape" `Slow test_e6_bboard_st_shape;
    Alcotest.test_case "E7 qos shape" `Slow test_e7_qos_shape;
    Alcotest.test_case "E9 all hold" `Slow test_e9_all_hold;
    Alcotest.test_case "E11 budget shape" `Slow test_e11_budget_shape;
    Alcotest.test_case "E12 commit shape" `Slow test_e12_commit_shape;
    Alcotest.test_case "E22 bounded memory" `Slow test_e22_bounded_memory;
    Alcotest.test_case "E23 partial replication" `Slow
      test_e23_partial_replication;
    Alcotest.test_case "registry complete" `Quick test_registry_complete;
  ]

(* E1 is fully deterministic: pin its rendered output exactly (a golden
   regression for both the metrics and the table renderer). *)
let test_e1_golden () =
  let out = E01_fig4.run () in
  let expected_lines =
    [ "F1     1             1   1 (= stime(R2) - rtime(W5))";
      "F2     0             1   0                          " ]
  in
  let lines = String.split_on_char '\n' out in
  List.iter
    (fun want ->
      Alcotest.(check bool)
        (Printf.sprintf "golden line %S present" (String.trim want))
        true (List.mem want lines))
    expected_lines

let golden_suite =
  [ Alcotest.test_case "E1 golden output" `Quick test_e1_golden ]

let suite = base_suite @ golden_suite
