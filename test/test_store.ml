(* Value, Version_vector, Db, Op, Write. *)

open Tact_store

let feq a b = Float.abs (a -. b) < 1e-9

(* --- Value ------------------------------------------------------------ *)

let test_value_equal () =
  Alcotest.(check bool) "nil" true (Value.equal Value.Nil Value.Nil);
  Alcotest.(check bool) "int" true (Value.equal (Value.Int 3) (Value.Int 3));
  Alcotest.(check bool) "int neq" false (Value.equal (Value.Int 3) (Value.Int 4));
  Alcotest.(check bool) "cross-type" false (Value.equal (Value.Int 3) (Value.Float 3.0));
  Alcotest.(check bool) "list" true
    (Value.equal (Value.List [ Value.Int 1; Value.Str "a" ])
       (Value.List [ Value.Int 1; Value.Str "a" ]));
  Alcotest.(check bool) "list length" false
    (Value.equal (Value.List [ Value.Int 1 ]) (Value.List []))

let test_value_compare_total () =
  let vs =
    [ Value.Nil; Value.Int 1; Value.Int 2; Value.Float 0.5; Value.Str "z";
      Value.List [ Value.Nil ] ]
  in
  (* Total order: antisymmetric and transitive enough to sort. *)
  List.iter
    (fun a ->
      List.iter
        (fun b ->
          let c1 = Value.compare a b and c2 = Value.compare b a in
          Alcotest.(check bool) "antisymmetric" true (compare c1 0 = compare 0 c2))
        vs)
    vs

let test_value_conversions () =
  Alcotest.(check int) "nil->0" 0 (Value.to_int Value.Nil);
  Alcotest.(check int) "float->int" 3 (Value.to_int (Value.Float 3.7));
  Alcotest.(check bool) "int->float" true (feq (Value.to_float (Value.Int 5)) 5.0);
  Alcotest.(check int) "nil->[] len" 0 (List.length (Value.to_list Value.Nil));
  Alcotest.check_raises "str->int raises" (Invalid_argument "Value.to_int")
    (fun () -> ignore (Value.to_int (Value.Str "x")))

let test_value_byte_size () =
  Alcotest.(check int) "int" 8 (Value.byte_size (Value.Int 1));
  Alcotest.(check int) "str" 9 (Value.byte_size (Value.Str "hello"));
  Alcotest.(check bool) "list grows" true
    (Value.byte_size (Value.List [ Value.Int 1; Value.Int 2 ])
    > Value.byte_size (Value.List [ Value.Int 1 ]))

let test_value_to_string () =
  Alcotest.(check string) "render" "[1; \"a\"]"
    (Value.to_string (Value.List [ Value.Int 1; Value.Str "a" ]))

(* --- Version_vector ----------------------------------------------------- *)

let test_vv_basics () =
  let v = Version_vector.create 3 in
  Alcotest.(check int) "size" 3 (Version_vector.size v);
  Alcotest.(check int) "init zero" 0 (Version_vector.get v 1);
  Version_vector.set v 1 5;
  Alcotest.(check int) "set/get" 5 (Version_vector.get v 1);
  Alcotest.(check bool) "covers" true (Version_vector.covers v ~origin:1 ~seq:5);
  Alcotest.(check bool) "not covers" false (Version_vector.covers v ~origin:1 ~seq:6);
  Alcotest.(check int) "total" 5 (Version_vector.total v);
  Alcotest.(check string) "render" "<0,5,0>" (Version_vector.to_string v)

let test_vv_copy_isolated () =
  let v = Version_vector.create 2 in
  let w = Version_vector.copy v in
  Version_vector.set v 0 9;
  Alcotest.(check int) "copy unaffected" 0 (Version_vector.get w 0)

let test_vv_merge_dominates () =
  let a = Version_vector.create 3 and b = Version_vector.create 3 in
  Version_vector.set a 0 2;
  Version_vector.set b 1 3;
  Alcotest.(check bool) "incomparable" false
    (Version_vector.dominates a b || Version_vector.dominates b a);
  Version_vector.merge_into a b;
  Alcotest.(check bool) "merge dominates both" true
    (Version_vector.dominates a b && Version_vector.get a 0 = 2);
  Alcotest.(check bool) "reflexive" true (Version_vector.dominates a a)

let vv_gen =
  QCheck.Gen.(
    map
      (fun l ->
        let v = Version_vector.create 4 in
        List.iteri (fun i x -> Version_vector.set v i x) l;
        v)
      (list_size (return 4) (int_bound 20)))

let vv_arb = QCheck.make ~print:(fun a -> Version_vector.to_string a) vv_gen

let merge_of a b =
  let c = Version_vector.copy a in
  Version_vector.merge_into c b;
  c

let test_vv_lattice =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"merge is a join (lub)" ~count:300
       QCheck.(pair vv_arb vv_arb)
       (fun (a, b) ->
         let m = merge_of a b in
         Version_vector.dominates m a && Version_vector.dominates m b
         && Version_vector.equal (merge_of a b) (merge_of b a)
         && Version_vector.equal (merge_of a a) a))

let test_vv_merge_assoc =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"merge associative" ~count:300
       QCheck.(triple vv_arb vv_arb vv_arb)
       (fun (a, b, c) ->
         Version_vector.equal (merge_of (merge_of a b) c) (merge_of a (merge_of b c))))

(* --- Db ------------------------------------------------------------- *)

let test_db_get_set () =
  let db = Db.create [ ("a", Value.Int 1) ] in
  Alcotest.(check bool) "initial" true (Value.equal (Db.get db "a") (Value.Int 1));
  Alcotest.(check bool) "missing is nil" true (Value.equal (Db.get db "zzz") Value.Nil);
  Db.set db "b" (Value.Str "x");
  Alcotest.(check bool) "set" true (Value.equal (Db.get db "b") (Value.Str "x"));
  Alcotest.(check int) "size" 2 (Db.size db)

let test_db_add () =
  let db = Db.create [] in
  Db.add db "c" 2.5;
  Db.add db "c" 1.5;
  Alcotest.(check bool) "accumulates" true (feq (Db.get_float db "c") 4.0);
  Alcotest.(check int) "get_int truncates" 4 (Db.get_int db "c")

let test_db_append_newest_first () =
  let db = Db.create [] in
  Db.append db "l" (Value.Int 1);
  Db.append db "l" (Value.Int 2);
  Alcotest.(check bool) "newest first" true
    (Value.equal (Db.get db "l") (Value.List [ Value.Int 2; Value.Int 1 ]))

let test_db_copy_isolated () =
  let db = Db.create [ ("a", Value.Int 1) ] in
  let cp = Db.copy db in
  Db.set db "a" (Value.Int 9);
  Alcotest.(check bool) "copy unaffected" true (Value.equal (Db.get cp "a") (Value.Int 1))

let test_db_equal () =
  let a = Db.create [ ("x", Value.Int 1) ] in
  let b = Db.create [] in
  Alcotest.(check bool) "differ" false (Db.equal a b);
  Db.set b "x" (Value.Int 1);
  Alcotest.(check bool) "equal" true (Db.equal a b);
  (* A key explicitly set to Nil equals a missing key. *)
  Db.set a "ghost" Value.Nil;
  Alcotest.(check bool) "nil = missing" true (Db.equal a b)

let test_db_keys () =
  let db = Db.create [ ("a", Value.Int 1); ("b", Value.Int 2) ] in
  Alcotest.(check int) "two keys" 2 (List.length (Db.keys db))

(* --- Op ------------------------------------------------------------- *)

let test_op_set_add_append () =
  let db = Db.create [] in
  (match Op.apply (Op.Set ("k", Value.Int 7)) db with
  | Op.Applied v -> Alcotest.(check bool) "set returns value" true (Value.equal v (Value.Int 7))
  | Op.Conflict _ -> Alcotest.fail "set conflicted");
  (match Op.apply (Op.Add ("n", 3.0)) db with
  | Op.Applied v -> Alcotest.(check bool) "add returns total" true (feq (Value.to_float v) 3.0)
  | Op.Conflict _ -> Alcotest.fail "add conflicted");
  ignore (Op.apply (Op.Append ("l", Value.Int 1)) db);
  Alcotest.(check int) "append worked" 1 (List.length (Value.to_list (Db.get db "l")))

let test_op_noop () =
  let db = Db.create [] in
  (match Op.apply Op.Noop db with
  | Op.Applied v -> Alcotest.(check bool) "nil" true (Value.equal v Value.Nil)
  | Op.Conflict _ -> Alcotest.fail "noop conflicted");
  Alcotest.(check int) "db untouched" 0 (Db.size db)

let test_op_guarded () =
  let op =
    Op.guarded ~name:"withdraw"
      ~check:(fun db -> Db.get_float db "bal" >= 10.0)
      ~apply:(fun db ->
        Db.add db "bal" (-10.0);
        Db.get db "bal")
      ~alt:(fun _ -> "insufficient")
      ()
  in
  let db = Db.create [ ("bal", Value.Float 15.0) ] in
  (match Op.apply op db with
  | Op.Applied v -> Alcotest.(check bool) "first succeeds" true (feq (Value.to_float v) 5.0)
  | Op.Conflict _ -> Alcotest.fail "unexpected conflict");
  (match Op.apply op db with
  | Op.Conflict r -> Alcotest.(check string) "alt reason" "insufficient" r
  | Op.Applied _ -> Alcotest.fail "should conflict");
  Alcotest.(check bool) "conflict left state alone" true (feq (Db.get_float db "bal") 5.0)

let test_op_outcome_helpers () =
  Alcotest.(check bool) "conflicted" true (Op.conflicted (Op.Conflict "x"));
  Alcotest.(check bool) "applied" false (Op.conflicted (Op.Applied Value.Nil));
  Alcotest.(check bool) "result of conflict is nil" true
    (Value.equal (Op.result (Op.Conflict "x")) Value.Nil)

let test_op_describe_size () =
  Alcotest.(check bool) "describe" true (String.length (Op.describe (Op.Add ("k", 1.0))) > 0);
  Alcotest.(check bool) "sizes positive" true
    (List.for_all
       (fun op -> Op.byte_size op > 0)
       [ Op.Noop; Op.Set ("k", Value.Int 1); Op.Add ("k", 1.0);
         Op.Append ("k", Value.Nil);
         Op.guarded ~name:"g" ~check:(fun _ -> true) ~apply:(fun _ -> Value.Nil) () ])

(* --- Write ------------------------------------------------------------ *)

let w ~origin ~seq ~t affects =
  Write.make ~id:{ origin; seq } ~accept_time:t ~op:Op.Noop
    ~affects:
      (List.map (fun (c, nw, ow) -> { Write.conit = c; nweight = nw; oweight = ow }) affects)

let test_write_weights () =
  let x = w ~origin:0 ~seq:1 ~t:1.0 [ ("a", 2.0, 0.5); ("b", 0.0, 0.0) ] in
  Alcotest.(check bool) "nweight" true (feq (Write.nweight x "a") 2.0);
  Alcotest.(check bool) "oweight" true (feq (Write.oweight x "a") 0.5);
  Alcotest.(check bool) "absent conit 0" true (feq (Write.nweight x "zzz") 0.0);
  Alcotest.(check bool) "affects a" true (Write.affects_conit x "a");
  Alcotest.(check bool) "zero weights don't affect" false (Write.affects_conit x "b");
  Alcotest.(check bool) "total oweight" true (feq (Write.total_oweight x) 0.5)

let test_write_ts_order () =
  let a = w ~origin:0 ~seq:1 ~t:1.0 [] in
  let b = w ~origin:1 ~seq:1 ~t:1.0 [] in
  let c = w ~origin:0 ~seq:2 ~t:2.0 [] in
  Alcotest.(check bool) "time dominates" true (Write.ts_compare a c < 0);
  Alcotest.(check bool) "origin tiebreak" true (Write.ts_compare a b < 0);
  Alcotest.(check int) "reflexive" 0 (Write.ts_compare a a)

let test_write_ts_total_order =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"ts_compare total order" ~count:200
       QCheck.(
         list
           (triple (int_bound 3) (int_bound 5) (float_bound_exclusive 10.0)))
       (fun triples ->
         let ws =
           List.map (fun (o, s, t) -> w ~origin:o ~seq:(s + 1) ~t []) triples
         in
         let sorted = List.sort Write.ts_compare ws in
         (* Sorting is stable w.r.t. the order: adjacent pairs non-decreasing. *)
         let rec ok = function
           | a :: (b :: _ as tl) -> Write.ts_compare a b <= 0 && ok tl
           | _ -> true
         in
         ok sorted))

let test_write_byte_size () =
  let small = w ~origin:0 ~seq:1 ~t:1.0 [ ("a", 1.0, 1.0) ] in
  let big = w ~origin:0 ~seq:1 ~t:1.0 [ ("a", 1.0, 1.0); ("bbbb", 1.0, 1.0) ] in
  Alcotest.(check bool) "more weights, more bytes" true
    (Write.byte_size big > Write.byte_size small)

let test_write_to_string () =
  Alcotest.(check bool) "mentions id" true
    (String.length (Write.to_string (w ~origin:2 ~seq:7 ~t:1.5 [])) > 0)

let suite =
  [
    Alcotest.test_case "value equal" `Quick test_value_equal;
    Alcotest.test_case "value compare total" `Quick test_value_compare_total;
    Alcotest.test_case "value conversions" `Quick test_value_conversions;
    Alcotest.test_case "value byte size" `Quick test_value_byte_size;
    Alcotest.test_case "value to_string" `Quick test_value_to_string;
    Alcotest.test_case "vv basics" `Quick test_vv_basics;
    Alcotest.test_case "vv copy isolated" `Quick test_vv_copy_isolated;
    Alcotest.test_case "vv merge/dominates" `Quick test_vv_merge_dominates;
    test_vv_lattice;
    test_vv_merge_assoc;
    Alcotest.test_case "db get/set" `Quick test_db_get_set;
    Alcotest.test_case "db add" `Quick test_db_add;
    Alcotest.test_case "db append newest-first" `Quick test_db_append_newest_first;
    Alcotest.test_case "db copy isolated" `Quick test_db_copy_isolated;
    Alcotest.test_case "db equal" `Quick test_db_equal;
    Alcotest.test_case "db keys" `Quick test_db_keys;
    Alcotest.test_case "op set/add/append" `Quick test_op_set_add_append;
    Alcotest.test_case "op noop" `Quick test_op_noop;
    Alcotest.test_case "op guarded" `Quick test_op_guarded;
    Alcotest.test_case "op outcome helpers" `Quick test_op_outcome_helpers;
    Alcotest.test_case "op describe/size" `Quick test_op_describe_size;
    Alcotest.test_case "write weights" `Quick test_write_weights;
    Alcotest.test_case "write ts order" `Quick test_write_ts_order;
    test_write_ts_total_order;
    Alcotest.test_case "write byte size" `Quick test_write_byte_size;
    Alcotest.test_case "write to_string" `Quick test_write_to_string;
  ]
