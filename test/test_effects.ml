(* The interprocedural effect pass (lib/staticcheck): call-graph
   construction and SCC order, the rules table, fixpoint propagation over
   the planted dirty/clean fixture twins (SA050-SA064), the dead-exported
   API pass (SA004), byte-identical re-runs, and the real-tree acceptance
   checks (deterministic core clean, nemesis campaign reaches
   Op.registry). *)

open Tact_staticcheck
module Json = Tact_check.Json

let root = if Sys.file_exists "fixtures/staticcheck" then "" else "test/"
let fixture name = root ^ "fixtures/staticcheck/" ^ name
let repo_root = if String.equal root "" then ".." else "."

let read_file path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let text = really_input_string ic len in
  close_in ic;
  text

let parse_rules_exn text =
  match Effects.parse_rules text with
  | Ok r -> r
  | Error e -> Alcotest.failf "rules did not parse: %s" e

let find_rule findings id =
  List.filter (fun (f : Report.finding) -> f.f_rule.Report.id = id) findings

let ids findings =
  List.sort_uniq String.compare
    (List.map (fun (f : Report.finding) -> f.f_rule.Report.id) findings)

let labels set = List.map Effects.atom_label (Effects.AtomSet.elements set)

(* --- the fixture universe ----------------------------------------------- *)

(* Each planted fixture file is loaded under a synthetic repo path so the
   dir-scoped rules (det roots, bin/ entrypoints) apply to it. *)
let eff_fixture_map =
  [ ("lib/core/det_dirty.ml", "eff_det_dirty.ml");
    ("lib/core/det_clean.ml", "eff_det_clean.ml");
    ("lib/core/pool_dirty.ml", "eff_pool_dirty.ml");
    ("lib/core/pool_clean.ml", "eff_pool_clean.ml");
    ("bin/entry_dirty.ml", "eff_entry_dirty.ml");
    ("bin/entry_clean.ml", "eff_entry_clean.ml");
    ("lib/core/annot_dirty.ml", "eff_annot_dirty.ml");
    ("lib/core/annot_clean.ml", "eff_annot_clean.ml");
    ("lib/core/scc_a.ml", "eff_scc_a.ml");
    ("lib/core/scc_b.ml", "eff_scc_b.ml") ]

let eff_rules_text =
  "atom wall Unix.gettimeofday\n\
   pure Random.State.*\n\
   atom random Random.*\n\
   atom hashtbl Hashtbl.iter\n\
   atom block Unix.sleepf Mutex.lock\n\
   atom domain Domain.spawn\n\
   atom raise failwith raise\n\
   assume pure\n\
   root det lib/core/Det_dirty lib/core/Det_clean\n"

let fixture_pipeline () =
  let sources =
    List.map
      (fun (path, file) -> Loader.load_string ~path (read_file (fixture file)))
      eff_fixture_map
  in
  let loaded = Loader.of_sources sources in
  let sums = List.map (Summary.of_source loaded) loaded.Loader.sources in
  let graph = Graph.build sums in
  let cg = Callgraph.build graph in
  let eff = Effects.infer (parse_rules_exn eff_rules_text) graph cg in
  (graph, cg, eff)

let fixture_eff = lazy (fixture_pipeline ())
let fixture_findings = lazy (let _, _, eff = Lazy.force fixture_eff in Effects.run eff)

let node dir m d = { Callgraph.cg_dir = dir; cg_mod = m; cg_def = d }

(* Exactly one finding with the id; return it. *)
let the findings id =
  match find_rule findings id with
  | [ f ] -> f
  | l -> Alcotest.failf "expected exactly one %s, got %d" id (List.length l)

let check_anchor name (f : Report.finding) path line context =
  Alcotest.(check string) (name ^ ": path") path f.Report.f_path;
  Alcotest.(check int) (name ^ ": line") line f.Report.f_line;
  Alcotest.(check string) (name ^ ": context") context f.Report.f_context

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

(* --- the SA05x/SA06x catalogue ------------------------------------------- *)

let test_catalogue () =
  List.iter
    (fun (id, severity) ->
      let r = Report.rule id in
      Alcotest.(check bool) (id ^ " severity") true
        (r.Report.severity = severity))
    [ ("SA004", Report.Info); ("SA050", Report.Error); ("SA051", Report.Error);
      ("SA052", Report.Error); ("SA053", Report.Warning);
      ("SA060", Report.Error); ("SA061", Report.Error);
      ("SA062", Report.Warning); ("SA063", Report.Warning);
      ("SA064", Report.Error) ];
  let ids = List.map (fun (r : Report.rule) -> r.Report.id) Report.rules in
  Alcotest.(check bool) "catalogue sorted by id" true
    (List.sort String.compare ids = ids)

let test_atom_order () =
  (* compare_atom drives every sorted rendering; the effect families keep
     a stable order and payloads break ties. *)
  let open Effects in
  Alcotest.(check bool) "wall before widened" true
    (compare_atom Wall_clock (Widened ".f") < 0);
  Alcotest.(check bool) "payload breaks ties" true
    (compare_atom (Blocking "Mutex.lock") (Blocking "Unix.read") < 0);
  Alcotest.(check int) "equal atoms" 0
    (compare_atom (Raises "failwith") (Raises "failwith"))

(* --- rules parsing ------------------------------------------------------- *)

let test_rules_parse_error () =
  (match Effects.parse_rules "atom bogus x\n" with
  | Ok _ -> Alcotest.fail "bad atom kind accepted"
  | Error e ->
    Alcotest.(check bool) "error names the line" true (contains e "line 1"));
  match Effects.parse_rules "root det NoSlash\n" with
  | Ok _ -> Alcotest.fail "root without dir accepted"
  | Error _ -> ()

let test_repo_effect_rules_parse () =
  ignore (parse_rules_exn (read_file (repo_root ^ "/analysis/effects.rules")))

(* --- call graph ---------------------------------------------------------- *)

let test_callgraph_shape () =
  let _, cg, _ = Lazy.force fixture_eff in
  let run = node "lib/core" "Det_dirty" "run" in
  Alcotest.(check bool) "run is a node" true (Callgraph.mem cg run);
  let callees = List.map (fun (n, _) -> Callgraph.label n) (Callgraph.succs cg run) in
  List.iter
    (fun callee ->
      Alcotest.(check bool) ("run calls " ^ callee) true
        (List.mem ("lib/core/Det_dirty." ^ callee) callees))
    [ "stamp"; "jitter"; "spread"; "fire" ];
  Alcotest.(check bool) "nodes sorted by key" true
    (let keys = List.map Callgraph.key (Callgraph.nodes cg) in
     List.sort String.compare keys = keys)

let test_scc_order_and_members () =
  let _, cg, _ = Lazy.force fixture_eff in
  let ping = node "lib/core" "Scc_a" "ping" in
  let pong = node "lib/core" "Scc_b" "pong" in
  let sccs = Callgraph.sccs cg in
  let cyc =
    match List.find_opt (fun c -> List.exists (fun n -> Callgraph.compare_node n ping = 0) c) sccs with
    | Some c -> c
    | None -> Alcotest.fail "ping's SCC not found"
  in
  Alcotest.(check int) "cross-module cycle is one SCC" 2 (List.length cyc);
  Alcotest.(check bool) "pong in the same SCC" true
    (List.exists (fun n -> Callgraph.compare_node n pong = 0) cyc);
  (* bottom-up: tick's singleton SCC must appear before the cycle that
     calls it. *)
  let tick = node "lib/core" "Scc_a" "tick" in
  let index_of n =
    let rec go i = function
      | [] -> Alcotest.failf "%s not in any SCC" (Callgraph.label n)
      | c :: rest ->
        if List.exists (fun m -> Callgraph.compare_node m n = 0) c then i
        else go (i + 1) rest
    in
    go 0 sccs
  in
  Alcotest.(check bool) "callees before callers" true (index_of tick < index_of ping)

let test_scc_fixpoint () =
  let _, _, eff = Lazy.force fixture_eff in
  let pong = node "lib/core" "Scc_b" "pong" in
  Alcotest.(check (list string)) "atom crosses the module cycle"
    [ "wall-clock" ]
    (labels (Effects.summary_of eff pong));
  match Effects.chain eff pong Effects.Wall_clock with
  | None -> Alcotest.fail "no chain through the SCC"
  | Some nodes ->
    Alcotest.(check string) "chain walks the cycle to the carrier"
      "lib/core/Scc_b.pong -> lib/core/Scc_a.ping -> lib/core/Scc_a.tick"
      (Effects.chain_text nodes)

(* --- direct vs transitive ------------------------------------------------ *)

let test_summary_sorted () =
  let _, _, eff = Lazy.force fixture_eff in
  let stamp = node "lib/core" "Det_dirty" "stamp" in
  let run = node "lib/core" "Det_dirty" "run" in
  Alcotest.(check (list string)) "stamp's own body reads the clock"
    [ "wall-clock" ] (labels (Effects.direct_of eff stamp));
  Alcotest.(check (list string)) "run is pure directly" []
    (labels (Effects.direct_of eff run));
  Alcotest.(check (list string)) "run's transitive summary"
    (List.sort String.compare
       [ "wall-clock"; "random"; "hashtbl-iter"; "widened:.on_step" ])
    (List.sort String.compare (labels (Effects.summary_of eff run)))

(* --- SA050-SA053: det-core twins ----------------------------------------- *)

let test_det_dirty_flagged () =
  let findings = Lazy.force fixture_findings in
  let f = the findings "SA050" in
  check_anchor "SA050" f "lib/core/det_dirty.ml" 7 "def:stamp:wall-clock";
  Alcotest.(check bool) "SA050 carries the chain" true
    (contains f.Report.f_message "reachable from deterministic root");
  let f = the findings "SA051" in
  check_anchor "SA051" f "lib/core/det_dirty.ml" 8 "def:jitter:random";
  let f = the findings "SA052" in
  check_anchor "SA052" f "lib/core/det_dirty.ml" 9 "def:spread:hashtbl-iter";
  let f = the findings "SA053" in
  check_anchor "SA053" f "lib/core/det_dirty.ml" 10 "def:fire:widened:.on_step"

let test_det_clean_silent () =
  let findings = Lazy.force fixture_findings in
  Alcotest.(check int) "clean det twin has no findings" 0
    (List.length
       (List.filter
          (fun (f : Report.finding) -> f.Report.f_path = "lib/core/det_clean.ml")
          findings))

(* --- SA060-SA062: pool-task twins ---------------------------------------- *)

let test_pool_dirty_flagged () =
  let findings = Lazy.force fixture_findings in
  let f = the findings "SA060" in
  check_anchor "SA060" f "lib/core/pool_dirty.ml" 12 "def:go:Unix.sleepf";
  Alcotest.(check bool) "SA060 names the route" true
    (contains f.Report.f_message "via lib/core/Pool_dirty.nap");
  (match find_rule findings "SA061" with
  | [ a; b ] ->
    let ctxs = List.sort String.compare [ a.Report.f_context; b.Report.f_context ] in
    Alcotest.(check (list string)) "SA061 mutex + domain-spawn"
      [ "def:go:Mutex.lock"; "def:go:domain-spawn" ] ctxs
  | l -> Alcotest.failf "expected two SA061, got %d" (List.length l));
  let f = the findings "SA062" in
  check_anchor "SA062" f "lib/core/pool_dirty.ml" 12 "def:go:raises"

let test_pool_clean_silent () =
  let findings = Lazy.force fixture_findings in
  Alcotest.(check int) "handled/pure pool twin has no findings" 0
    (List.length
       (List.filter
          (fun (f : Report.finding) -> f.Report.f_path = "lib/core/pool_clean.ml")
          findings))

let test_task_summary_api () =
  let graph, _, eff = Lazy.force fixture_eff in
  let sum =
    match Graph.find graph ~dir:"lib/core" ~modname:"Pool_dirty" with
    | Some s -> s
    | None -> Alcotest.fail "Pool_dirty summary missing"
  in
  match sum.Summary.sum_pool_sites with
  | [ site ] ->
    let atoms = labels (Effects.task_summary eff sum site) in
    List.iter
      (fun a ->
        Alcotest.(check bool) ("task summary has " ^ a) true (List.mem a atoms))
      [ "blocks:Unix.sleepf"; "blocks:Mutex.lock"; "domain-spawn";
        "raises:failwith" ]
  | l -> Alcotest.failf "expected one pool site, got %d" (List.length l)

(* --- SA063 / SA064 ------------------------------------------------------- *)

let test_entry_twins () =
  let findings = Lazy.force fixture_findings in
  let f = the findings "SA063" in
  check_anchor "SA063" f "bin/entry_dirty.ml" 4 "entry:Entry_dirty";
  Alcotest.(check bool) "SA063 names the route" true
    (contains f.Report.f_message "via bin/Entry_dirty._ -> bin/Entry_dirty.bail");
  Alcotest.(check int) "handled entry twin is silent" 0
    (List.length
       (List.filter
          (fun (f : Report.finding) -> f.Report.f_path = "bin/entry_clean.ml")
          findings))

let test_annot_twins () =
  let findings = Lazy.force fixture_findings in
  let f = the findings "SA064" in
  check_anchor "SA064" f "lib/core/annot_dirty.ml" 5 "def:leak:effects-pure";
  Alcotest.(check bool) "SA064 shows the inferred set" true
    (contains f.Report.f_message "wall-clock");
  Alcotest.(check int) "honest annotation is silent" 0
    (List.length
       (List.filter
          (fun (f : Report.finding) -> f.Report.f_path = "lib/core/annot_clean.ml")
          findings))

(* --- renderers carry the chains ------------------------------------------ *)

let test_chains_in_renderers () =
  let findings = Lazy.force fixture_findings in
  let no_baseline _ = false in
  let json = Report.json_of ~baselined:no_baseline findings in
  let sarif = Report.sarif_of ~baselined:no_baseline findings in
  let text =
    String.concat "\n" (List.map Report.to_text findings)
  in
  List.iter
    (fun rendered ->
      Alcotest.(check bool) "chain text present" true
        (contains rendered "lib/core/Pool_dirty.nap"))
    [ json; sarif; text ]

(* --- byte-identical re-runs ---------------------------------------------- *)

let test_determinism () =
  let render () =
    let _, cg, eff = fixture_pipeline () in
    let findings = Effects.run eff in
    ( String.concat "\n" (List.map Report.to_text findings),
      Report.json_of ~baselined:(fun _ -> false) findings,
      Callgraph.dot cg )
  in
  let t1, j1, d1 = render () in
  let t2, j2, d2 = render () in
  Alcotest.(check string) "text identical" t1 t2;
  Alcotest.(check string) "json identical" j1 j2;
  Alcotest.(check string) "dot identical" d1 d2

(* --- why ------------------------------------------------------------------ *)

let test_why () =
  let _, cg, eff = Lazy.force fixture_eff in
  (match Callgraph.resolve_symbol cg "Det_dirty.run" with
  | [ _ ] -> ()
  | l -> Alcotest.failf "resolve_symbol: expected one node, got %d" (List.length l));
  let out = String.concat "\n" (Effects.why eff "Det_dirty.run") in
  Alcotest.(check bool) "why shows the summary" true (contains out "wall-clock");
  Alcotest.(check bool) "why shows a chain" true
    (contains out "lib/core/Det_dirty.stamp");
  Alcotest.(check (list string)) "unknown symbol"
    [ "no definition matches \"nope\"" ]
    (Effects.why eff "nope")

(* --- SA004: dead exported API -------------------------------------------- *)

let interfaces sources =
  let loaded =
    Loader.of_sources
      (List.map
         (fun (path, intf, src) -> Loader.load_string ?intf ~path src)
         sources)
  in
  let sums = List.map (Summary.of_source loaded) loaded.Loader.sources in
  Interfaces.run ~analyzed:[ "lib" ] (Graph.build sums)

let test_dead_api () =
  let findings =
    interfaces
      [ ("lib/core/api.ml", Some "val used : int -> int\nval dead : int\n",
         "let used x = x\nlet dead = 3\n");
        ("lib/replica/client.ml", None, "let f x = Api.used x\n") ]
  in
  let f = the findings "SA004" in
  check_anchor "SA004" f "lib/core/api.mli" 2 "val:Api.dead";
  Alcotest.(check int) "only the dead export flagged" 1 (List.length findings)

let test_dead_api_bare_ref_skips () =
  Alcotest.(check (list string)) "bare module alias disables the pass" []
    (ids
       (interfaces
          [ ("lib/core/api.ml", Some "val used : int -> int\nval dead : int\n",
             "let used x = x\nlet dead = 3\n");
            ("lib/replica/client.ml", None,
             "module A = Api\nlet f x = A.used x\n") ]))

let test_dead_api_self_ref_not_alive () =
  (* A module using its own export does not keep it alive. *)
  Alcotest.(check (list string)) "self reference is not a use" [ "SA004" ]
    (ids
       (interfaces
          [ ("lib/core/api.ml", Some "val used : int -> int\n",
             "let used x = x\nlet _ = used 1\n") ]))

let test_intf_parse_error () =
  let findings =
    interfaces [ ("lib/core/api.ml", Some "val broken", "let x = 1\n") ]
  in
  let f = the findings "SA001" in
  Alcotest.(check string) "reported on the .mli" "lib/core/api.mli"
    f.Report.f_path;
  Alcotest.(check string) "context" "interface" f.Report.f_context

let test_mli_loader () =
  let s =
    Loader.load_string ~intf:"val a : int\n\nval b : unit -> int\n"
      ~path:"lib/core/m.ml" "let a = 1\nlet b () = a\n"
  in
  match s.Loader.s_intf with
  | None -> Alcotest.fail "intf not attached"
  | Some i ->
    Alcotest.(check string) "intf path" "lib/core/m.mli" i.Loader.i_path;
    Alcotest.(check (list (pair string int))) "exported vals with lines"
      [ ("a", 1); ("b", 3) ] i.Loader.i_vals

let test_find_module () =
  let loaded =
    Loader.of_sources [ Loader.load_string ~path:"lib/core/m.ml" "let a = 1\n" ]
  in
  Alcotest.(check bool) "find_module hit" true
    (Loader.find_module loaded ~dir:"lib/core" "M" <> None);
  Alcotest.(check bool) "find_module miss" true
    (Loader.find_module loaded ~dir:"lib/core" "Absent" = None)

(* --- stale baseline keys -------------------------------------------------- *)

let test_baseline_stale () =
  let live =
    Report.finding ~rule_id:"SA040" ~path:"lib/a.ml" ~loc:Location.none
      ~context:"f:compare" "m"
  in
  let b =
    Baseline.of_keys [ Report.key live; "SA041 lib/gone.ml g:wall-clock" ]
  in
  Alcotest.(check (list string)) "only the rotted key is stale"
    [ "SA041 lib/gone.ml g:wall-clock" ]
    (Baseline.stale b [ live ]);
  Alcotest.(check (list string)) "empty baseline has no stale keys" []
    (Baseline.stale Baseline.empty [ live ]);
  Alcotest.(check int) "keys round-trip" 2 (List.length (Baseline.keys b))

(* --- the real tree -------------------------------------------------------- *)

let repo_eff =
  lazy
    (let loaded = Loader.load_dirs ~root:repo_root [ "lib"; "bin" ] in
     let sums = List.map (Summary.of_source loaded) loaded.Loader.sources in
     let graph = Graph.build sums in
     let cg = Callgraph.build graph in
     let rules =
       parse_rules_exn (read_file (repo_root ^ "/analysis/effects.rules"))
     in
     (graph, cg, Effects.infer rules graph cg))

let test_repo_det_core_clean () =
  (* The acceptance bar: the deterministic core of the real tree carries
     no wall-clock, unseeded-random or Hashtbl-order effects.  SA053
     widenings (trust seams) are allowed and baselined. *)
  let _, _, eff = Lazy.force repo_eff in
  let findings = Effects.run eff in
  List.iter
    (fun id ->
      Alcotest.(check (list string)) (id ^ " clean on the real tree") []
        (List.map (fun (f : Report.finding) -> f.Report.f_message)
           (find_rule findings id)))
    [ "SA050"; "SA051"; "SA052" ]

let test_repo_campaign_reaches_registry () =
  (* PR7's domain-race pass caught the nemesis campaign touching
     Op.registry; the fixpoint must rediscover it through the call graph,
     with the full chain. *)
  let _, cg, eff = Lazy.force repo_eff in
  let run =
    match Callgraph.resolve_symbol cg "Campaign.run" with
    | [ n ] -> n
    | l -> Alcotest.failf "Campaign.run: expected one node, got %d" (List.length l)
  in
  let atoms = Effects.summary_of eff run in
  Alcotest.(check bool) "campaign reaches the op registry" true
    (Effects.AtomSet.mem (Effects.Global_mutation "Op.registry") atoms);
  match Effects.chain eff run (Effects.Global_mutation "Op.registry") with
  | None -> Alcotest.fail "no chain to Op.registry"
  | Some nodes ->
    let text = Effects.chain_text nodes in
    Alcotest.(check bool) "chain starts at the campaign" true
      (contains text "lib/nemesis/Campaign.run");
    Alcotest.(check bool) "chain ends in the store" true
      (contains text "lib/store/Op.apply")

let suite =
  [
    Alcotest.test_case "rule catalogue" `Quick test_catalogue;
    Alcotest.test_case "atom order" `Quick test_atom_order;
    Alcotest.test_case "rules parse errors" `Quick test_rules_parse_error;
    Alcotest.test_case "repo effect rules parse" `Quick
      test_repo_effect_rules_parse;
    Alcotest.test_case "callgraph shape" `Quick test_callgraph_shape;
    Alcotest.test_case "scc order and members" `Quick test_scc_order_and_members;
    Alcotest.test_case "scc fixpoint" `Quick test_scc_fixpoint;
    Alcotest.test_case "direct vs summary" `Quick test_summary_sorted;
    Alcotest.test_case "det twins: dirty flagged" `Quick test_det_dirty_flagged;
    Alcotest.test_case "det twins: clean silent" `Quick test_det_clean_silent;
    Alcotest.test_case "pool twins: dirty flagged" `Quick test_pool_dirty_flagged;
    Alcotest.test_case "pool twins: clean silent" `Quick test_pool_clean_silent;
    Alcotest.test_case "task summary api" `Quick test_task_summary_api;
    Alcotest.test_case "entry twins (SA063)" `Quick test_entry_twins;
    Alcotest.test_case "annotation twins (SA064)" `Quick test_annot_twins;
    Alcotest.test_case "chains in renderers" `Quick test_chains_in_renderers;
    Alcotest.test_case "byte-identical re-runs" `Quick test_determinism;
    Alcotest.test_case "why" `Quick test_why;
    Alcotest.test_case "dead exported api" `Quick test_dead_api;
    Alcotest.test_case "dead api: bare ref skips" `Quick
      test_dead_api_bare_ref_skips;
    Alcotest.test_case "dead api: self ref not alive" `Quick
      test_dead_api_self_ref_not_alive;
    Alcotest.test_case "interface parse error" `Quick test_intf_parse_error;
    Alcotest.test_case "mli loader" `Quick test_mli_loader;
    Alcotest.test_case "find module" `Quick test_find_module;
    Alcotest.test_case "baseline stale keys" `Quick test_baseline_stale;
    Alcotest.test_case "real tree: det core clean" `Quick
      test_repo_det_core_clean;
    Alcotest.test_case "real tree: campaign reaches registry" `Quick
      test_repo_campaign_reaches_registry;
  ]
