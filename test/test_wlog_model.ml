(* Model-based testing of Wlog: the incremental implementation (rollback
   short-cuts, cached conit values, pending buffers, truncation) is compared
   against a naive reference model that recomputes everything from first
   principles after every step. *)

open Tact_store

let feq a b = Float.abs (a -. b) < 1e-6

(* ------------------------------------------------------------------ *)
(* The reference model: a bag of known writes, a commit frontier, and   *)
(* recomputation from scratch for every query.                          *)

module Model = struct
  type t = {
    replicas : int;
    mutable offered : Write.t list;  (** everything ever offered, unordered *)
    mutable committed : Write.id list;  (** commit order *)
  }

  let create ~replicas = { replicas; offered = []; committed = [] }

  let insert t (w : Write.t) =
    if not (List.exists (fun (x : Write.t) -> x.id = w.id) t.offered) then
      t.offered <- w :: t.offered

  (* The log's knowledge is the maximal per-origin contiguous prefix of what
     was offered (gapped writes sit in its pending buffer until the gap
     fills). *)
  let known t =
    List.filter
      (fun (w : Write.t) ->
        let rec prefix_complete seq =
          seq = 0
          || List.exists
               (fun (x : Write.t) -> x.id.origin = w.id.origin && x.id.seq = seq)
               t.offered
             && prefix_complete (seq - 1)
        in
        prefix_complete w.id.seq)
      t.offered

  let canonical t = List.sort Write.ts_compare (known t)

  let tentative t =
    List.filter
      (fun (w : Write.t) -> not (List.mem w.id t.committed))
      (canonical t)

  let commit_stable t ~cover =
    (* Same stability rule, recomputed naively. *)
    let stable (w : Write.t) =
      let ok = ref true in
      Array.iteri
        (fun o c ->
          if o <> w.id.origin then
            if c < w.accept_time || (c = w.accept_time && o < w.id.origin) then
              ok := false)
        cover;
      !ok
    in
    let rec take = function
      | w :: rest when stable w ->
        t.committed <- t.committed @ [ w.Write.id ];
        take rest
      | _ -> ()
    in
    take (tentative t)

  let db t =
    let image = Db.create [] in
    let by_id id = List.find (fun (w : Write.t) -> w.id = id) t.offered in
    List.iter (fun id -> ignore (Op.apply (by_id id).op image)) t.committed;
    List.iter (fun (w : Write.t) -> ignore (Op.apply w.op image)) (tentative t);
    image

  let conit_value t conit =
    List.fold_left (fun acc w -> acc +. Write.nweight w conit) 0.0 (known t)

  let tentative_oweight t conit =
    List.fold_left (fun acc w -> acc +. Write.oweight w conit) 0.0
      (List.filter (fun w -> Write.affects_conit w conit) (tentative t))
end

(* ------------------------------------------------------------------ *)

let conits = [| "a"; "b"; "c" |]

let gen_pool rng ~replicas =
  let pool = ref [] in
  let clock = Array.make replicas 0.0 in
  for origin = 0 to replicas - 1 do
    let count = 1 + Tact_util.Prng.int rng 10 in
    for seq = 1 to count do
      clock.(origin) <- clock.(origin) +. Tact_util.Prng.float rng 4.0 +. 0.01;
      let conit = Tact_util.Prng.pick rng conits in
      let nw = Tact_util.Prng.uniform_in rng ~lo:(-2.0) ~hi:2.0 in
      let ow = Tact_util.Prng.float rng 2.0 in
      pool :=
        Write.make ~id:{ origin; seq }
          ~accept_time:clock.(origin)
          ~op:(Op.Add ("k" ^ conit, 1.0))
          ~affects:[ { Write.conit; nweight = nw; oweight = ow } ]
        :: !pool
    done
  done;
  Array.of_list !pool

let agree log model =
  Db.equal (Wlog.db log) (Model.db model)
  && List.map (fun (w : Write.t) -> w.Write.id) (Wlog.tentative log)
     = List.map (fun (w : Write.t) -> w.Write.id) (Model.tentative model)
  && Array.for_all
       (fun c ->
         feq (Wlog.conit_value log c) (Model.conit_value model c)
         && feq (Wlog.tentative_oweight log c) (Model.tentative_oweight model c))
       conits

let run_scenario seed =
  let rng = Tact_util.Prng.create ~seed in
  let replicas = 3 in
  let pool = gen_pool rng ~replicas in
  Tact_util.Prng.shuffle rng pool;
  let log = Wlog.create ~replicas ~initial:[] in
  let model = Model.create ~replicas in
  let max_time =
    Array.fold_left (fun acc (w : Write.t) -> Float.max acc w.accept_time) 0.0 pool
  in
  let ok = ref true in
  Array.iteri
    (fun i w ->
      (* Random action mix: mostly inserts, some batch inserts, some commits. *)
      (match Tact_util.Prng.int rng 10 with
      | 0 | 1 ->
        (* Stability commit with a random cover. *)
        let cover =
          Array.init replicas (fun _ -> Tact_util.Prng.float rng (max_time +. 1.0))
        in
        ignore (Wlog.commit_stable log ~cover);
        Model.commit_stable model ~cover
      | 2 ->
        (* Small batch: this write plus the next ones already offered get
           re-offered (duplicates must be ignored). *)
        let batch =
          [ w ] @ (if i > 0 then [ pool.(i - 1) ] else []) @ [ w ]
        in
        ignore (Wlog.insert_batch log batch);
        List.iter (Model.insert model) batch
      | _ ->
        ignore (Wlog.insert log w);
        Model.insert model w);
      if not (agree log model) then ok := false)
    pool;
  (* Finish: insert everything (covering buffered gaps), commit fully. *)
  ignore (Wlog.insert_batch log (Array.to_list pool));
  Array.iter (Model.insert model) pool;
  let full = Array.make replicas (max_time +. 1.0) in
  ignore (Wlog.commit_stable log ~cover:full);
  Model.commit_stable model ~cover:full;
  !ok && agree log model
  && Wlog.committed_count log = List.length model.Model.committed
  && List.length (Wlog.tentative log) = 0

let test_model_equivalence =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"wlog agrees with the naive reference model"
       ~count:120
       QCheck.(int_bound 1_000_000)
       run_scenario)

(* Truncation against the model: after truncation the queryable state is
   unchanged; only diff service shrinks. *)
let test_truncation_preserves_state =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"truncation never changes observable state" ~count:60
       QCheck.(pair (int_bound 1_000_000) (int_bound 10))
       (fun (seed, keep) ->
         let rng = Tact_util.Prng.create ~seed in
         let pool = gen_pool rng ~replicas:3 in
         let log = Wlog.create ~replicas:3 ~initial:[] in
         Array.iter (fun w -> ignore (Wlog.insert log w)) pool;
         let max_time =
           Array.fold_left (fun acc (w : Write.t) -> Float.max acc w.accept_time) 0.0 pool
         in
         ignore (Wlog.commit_stable log ~cover:(Array.make 3 (max_time +. 1.0)));
         let before_db = Db.copy (Wlog.db log) in
         let before_count = Wlog.committed_count log in
         ignore (Wlog.truncate log ~keep);
         Db.equal (Wlog.db log) before_db
         && Wlog.committed_count log = before_count
         && Wlog.retained log <= max keep before_count))

(* ------------------------------------------------------------------ *)
(* Widened differential scenarios: a thousand-plus operations per seed,
   order-sensitive write procedures (whose outcomes flip under reordering),
   duplicate and gapped deliveries, both commitment schemes — and the O(1)
   observation cursors checked against the eager lists they replaced, long
   after capture and across truncation. *)

(* A faster reference model (hash-indexed rather than quadratic list scans)
   so the scenarios can afford hundreds of writes; still recomputes the
   database image and every outcome from scratch at each checkpoint. *)
module Bigmodel = struct
  type t = {
    replicas : int;
    by_id : (Write.id, Write.t) Hashtbl.t;
    mutable committed : Write.id list;  (** commit order, oldest first *)
    committed_set : (Write.id, unit) Hashtbl.t;
  }

  let create ~replicas =
    {
      replicas;
      by_id = Hashtbl.create 64;
      committed = [];
      committed_set = Hashtbl.create 64;
    }

  let insert t (w : Write.t) =
    if not (Hashtbl.mem t.by_id w.id) then Hashtbl.replace t.by_id w.id w

  (* The contiguous per-origin prefixes of everything offered. *)
  let known t =
    let out = ref [] in
    for origin = 0 to t.replicas - 1 do
      let seq = ref 1 in
      while Hashtbl.mem t.by_id { Write.origin; seq = !seq } do
        out := Hashtbl.find t.by_id { Write.origin; seq = !seq } :: !out;
        incr seq
      done
    done;
    !out

  let canonical t = List.sort Write.ts_compare (known t)

  let tentative t =
    List.filter
      (fun (w : Write.t) -> not (Hashtbl.mem t.committed_set w.id))
      (canonical t)

  let commit t id =
    t.committed <- t.committed @ [ id ];
    Hashtbl.replace t.committed_set id ()

  let commit_stable t ~cover =
    let stable (w : Write.t) =
      let ok = ref true in
      Array.iteri
        (fun o c ->
          if o <> w.id.origin then
            if c < w.accept_time || (c = w.accept_time && o < w.id.origin) then
              ok := false)
        cover;
      !ok
    in
    let rec take = function
      | (w : Write.t) :: rest when stable w ->
        commit t w.id;
        take rest
      | _ -> ()
    in
    take (tentative t)

  let commit_ids t ids =
    List.iter
      (fun id ->
        if Hashtbl.mem t.by_id id && not (Hashtbl.mem t.committed_set id) then
          commit t id)
      ids

  (* Recompute both images and every write's outcome from first principles:
     committed writes in commit order, then the tentative suffix in timestamp
     order. *)
  let replay t =
    let image = Db.create [] in
    let outcomes = Hashtbl.create 64 in
    List.iter
      (fun id ->
        Hashtbl.replace outcomes id (Op.apply (Hashtbl.find t.by_id id).Write.op image))
      t.committed;
    let committed_image = Db.copy image in
    List.iter
      (fun (w : Write.t) -> Hashtbl.replace outcomes w.id (Op.apply w.op image))
      (tentative t);
    (image, committed_image, outcomes)

  let conit_value t conit =
    List.fold_left (fun acc w -> acc +. Write.nweight w conit) 0.0 (known t)

  let tentative_oweight t conit =
    List.fold_left (fun acc w -> acc +. Write.oweight w conit) 0.0
      (List.filter (fun w -> Write.affects_conit w conit) (tentative t))
end

(* An order-sensitive write procedure: applies only while the key stays under
   a cap, so reorderings flip which writes conflict — exercising outcome
   re-recording across rollback/reapply. *)
let cap_add key limit delta =
  Op.Proc
    {
      name = "cap_add";
      size = 16;
      body =
        (fun db ->
          let v = Db.get_float db key in
          if v +. delta > limit then Op.Conflict "over cap"
          else begin
            Db.set db key (Value.Float (v +. delta));
            Op.Applied (Value.Float (v +. delta))
          end);
    }

let gen_big_pool rng ~replicas =
  let pool = ref [] in
  let clock = Array.make replicas 0.0 in
  for origin = 0 to replicas - 1 do
    let count = 100 + Tact_util.Prng.int rng 41 in
    for seq = 1 to count do
      clock.(origin) <- clock.(origin) +. Tact_util.Prng.float rng 2.0 +. 0.01;
      let conit = Tact_util.Prng.pick rng conits in
      let key = "k" ^ conit in
      let op =
        match Tact_util.Prng.int rng 4 with
        | 0 -> Op.Add (key, Tact_util.Prng.uniform_in rng ~lo:(-1.0) ~hi:1.0)
        | 1 -> Op.Set (key, Value.Float (Tact_util.Prng.float rng 10.0))
        | 2 -> Op.Append (key ^ ".log", Value.Int seq)
        | _ -> cap_add key 25.0 1.0
      in
      let nw = Tact_util.Prng.uniform_in rng ~lo:(-2.0) ~hi:2.0 in
      let ow = Tact_util.Prng.float rng 2.0 in
      pool :=
        Write.make ~id:{ origin; seq }
          ~accept_time:clock.(origin) ~op
          ~affects:[ { Write.conit; nweight = nw; oweight = ow } ]
        :: !pool
    done
  done;
  Array.of_list !pool

let agree_big log m =
  let db_m, cdb_m, out_m = Bigmodel.replay m in
  Db.equal (Wlog.db log) db_m
  && Db.equal (Wlog.committed_db log) cdb_m
  && Wlog.tentative_ids log
     = List.map (fun (w : Write.t) -> w.Write.id) (Bigmodel.tentative m)
  && Array.for_all
       (fun c ->
         feq (Wlog.conit_value log c) (Bigmodel.conit_value m c)
         && feq (Wlog.tentative_oweight log c) (Bigmodel.tentative_oweight m c))
       conits
  && List.for_all
       (fun (w : Write.t) -> Wlog.outcome log w.id = Some (Hashtbl.find out_m w.id))
       (Bigmodel.tentative m)
  && List.for_all
       (fun id -> Wlog.final_outcome log id = Some (Hashtbl.find out_m id))
       m.Bigmodel.committed

let run_big_scenario ~scheme seed =
  let rng = Tact_util.Prng.create ~seed in
  let replicas = 4 in
  let pool = gen_big_pool rng ~replicas in
  Tact_util.Prng.shuffle rng pool;
  let log = Wlog.create ~replicas ~initial:[] in
  let m = Bigmodel.create ~replicas in
  let max_time =
    Array.fold_left (fun acc (w : Write.t) -> Float.max acc w.accept_time) 0.0 pool
  in
  let ops = ref 0 in
  let ok = ref true in
  (* Each checkpoint also captures an observation the way a replica now does:
     the O(1) commit cursor next to the eager committed-id list it replaced.
     All captures are re-expanded at the very end, after further commits and
     a truncation, and must still match. *)
  let cursors = ref [] in
  let checkpoint () =
    if not (agree_big log m) then ok := false;
    let lo, hi = Wlog.commit_cursor log in
    let eager = List.map (fun (w : Write.t) -> w.Write.id) (Wlog.committed log) in
    cursors := (lo, hi, eager) :: !cursors
  in
  let commit_some () =
    match scheme with
    | `Stability ->
      let cover =
        Array.init replicas (fun _ -> Tact_util.Prng.float rng (max_time +. 1.0))
      in
      incr ops;
      ignore (Wlog.commit_stable log ~cover);
      Bigmodel.commit_stable m ~cover
    | `Csn ->
      (* Commit a short slice of the tentative suffix, sometimes in reversed
         (non-timestamp) order to force commit-order divergence. *)
      let tent = Bigmodel.tentative m in
      let take = Tact_util.Prng.int rng 4 in
      let ids =
        List.filteri (fun j _ -> j < take) tent
        |> List.map (fun (w : Write.t) -> w.Write.id)
      in
      let ids = if Tact_util.Prng.int rng 3 = 0 then List.rev ids else ids in
      incr ops;
      ignore (Wlog.commit_ids log ids);
      Bigmodel.commit_ids m ids
  in
  Array.iteri
    (fun i w ->
      (match Tact_util.Prng.int rng 12 with
      | 0 | 1 ->
        commit_some ();
        incr ops;
        ignore (Wlog.insert log w);
        Bigmodel.insert m w
      | 2 | 3 ->
        (* Re-offer a batch laced with duplicates. *)
        let batch =
          [ w; w ] @ if i > 2 then [ pool.(i - 1); pool.(i / 2) ] else []
        in
        ops := !ops + List.length batch;
        ignore (Wlog.insert_batch log batch);
        List.iter (Bigmodel.insert m) batch
      | _ ->
        incr ops;
        ignore (Wlog.insert log w);
        Bigmodel.insert m w);
      if i mod 29 = 0 then checkpoint ())
    pool;
  (* Fill every remaining gap, then commit everything. *)
  ops := !ops + Array.length pool;
  ignore (Wlog.insert_batch log (Array.to_list pool));
  Array.iter (Bigmodel.insert m) pool;
  (match scheme with
  | `Stability ->
    let full = Array.make replicas (max_time +. 1.0) in
    ignore (Wlog.commit_stable log ~cover:full);
    Bigmodel.commit_stable m ~cover:full
  | `Csn ->
    let ids = List.map (fun (w : Write.t) -> w.Write.id) (Bigmodel.tentative m) in
    ignore (Wlog.commit_ids log ids);
    Bigmodel.commit_ids m ids);
  checkpoint ();
  ignore (Wlog.truncate log ~keep:5);
  let cursors_ok =
    List.for_all
      (fun (lo, hi, eager) -> Wlog.commit_slice log ~lo ~hi = eager)
      !cursors
  in
  !ok && cursors_ok
  && !ops >= 1000
  && Wlog.tentative log = []
  && Wlog.committed_count log = List.length m.Bigmodel.committed

let test_big ~scheme name seed =
  Alcotest.test_case (Printf.sprintf "%s (seed %d)" name seed) `Quick (fun () ->
      Alcotest.(check bool) "big differential scenario" true
        (run_big_scenario ~scheme seed))

let big_suite =
  List.concat_map
    (fun seed ->
      [
        test_big ~scheme:`Stability "1k+ ops, stability commits" seed;
        test_big ~scheme:`Csn "1k+ ops, CSN commits" seed;
      ])
    [ 11; 23; 37; 58; 71 ]

let suite =
  [ test_model_equivalence; test_truncation_preserves_state ] @ big_suite
