(* Replica and Session behaviour beyond the smoke tests: session weight
   consumption, access records, read-your-writes within a replica, commit
   schemes, partitions, and randomized whole-system properties checked by the
   omniscient verifier. *)

open Tact_sim
open Tact_store
open Tact_core
open Tact_replica

let topo ?(latency = 0.04) n = Topology.uniform ~n ~latency ~bandwidth:1_000_000.0

let unit_weight conit = { Write.conit; nweight = 1.0; oweight = 1.0 }

let feq a b = Float.abs (a -. b) < 1e-9

(* --- Session ---------------------------------------------------------- *)

let test_session_consumes_spec () =
  let config = Config.default in
  let sys = System.create ~topology:(topo 2) ~config () in
  let s = Session.create (System.replica sys 0) in
  Session.affect_conit s "a" ~nweight:2.0 ~oweight:1.0;
  Session.write s (Op.Add ("x", 1.0)) ~k:ignore;
  (* The next write carries no leftover weights. *)
  Session.write s (Op.Add ("x", 1.0)) ~k:ignore;
  System.run sys;
  let ws = System.all_writes sys in
  Alcotest.(check int) "two writes" 2 (List.length ws);
  (match ws with
  | [ w1; w2 ] ->
    Alcotest.(check bool) "first affected" true (feq (Write.nweight w1 "a") 2.0);
    Alcotest.(check bool) "second clean" false (Write.affects_conit w2 "a")
  | _ -> Alcotest.fail "expected two writes");
  (* Same for deps on reads. *)
  Session.dependon_conit s "a" ~ne:1.0 ();
  Session.read s (fun _ -> Value.Nil) ~k:ignore;
  Session.read s (fun _ -> Value.Nil) ~k:ignore;
  System.run sys;
  let reads =
    List.filter (fun (a : Access.t) -> a.kind = Access.Read) (System.records sys)
  in
  Alcotest.(check int) "two reads" 2 (List.length reads);
  Alcotest.(check int) "only first has dep" 1
    (List.length (List.filter (fun (a : Access.t) -> a.deps <> []) reads))

let test_read_your_writes_locally () =
  let sys = System.create ~topology:(topo 2) ~config:Config.default () in
  let r0 = System.replica sys 0 in
  let seen = ref nan in
  Replica.submit_write r0 ~deps:[] ~affects:[] ~op:(Op.Add ("x", 1.0)) ~k:(fun _ ->
      Replica.submit_read r0 ~deps:[]
        ~f:(fun db -> Db.get db "x")
        ~k:(fun v -> seen := Value.to_float v));
  System.run sys;
  Alcotest.(check bool) "own write visible" true (feq !seen 1.0)

let test_access_records_complete () =
  let sys = System.create ~topology:(topo 2) ~config:Config.default () in
  let r0 = System.replica sys 0 in
  let engine = System.engine sys in
  Engine.schedule engine ~delay:1.0 (fun () ->
      Replica.submit_write r0 ~deps:[] ~affects:[ unit_weight "c" ]
        ~op:(Op.Add ("x", 1.0)) ~k:ignore);
  Engine.schedule engine ~delay:2.0 (fun () ->
      Replica.submit_read r0 ~deps:[ ("c", Bounds.weak) ]
        ~f:(fun db -> Db.get db "x")
        ~k:ignore);
  System.run sys;
  let records = System.records sys in
  Alcotest.(check int) "two records" 2 (List.length records);
  let write_rec = List.hd records and read_rec = List.nth records 1 in
  (match write_rec.Access.kind with
  | Access.Write_access id -> Alcotest.(check int) "write id" 1 id.Write.seq
  | Access.Read -> Alcotest.fail "first should be the write");
  Alcotest.(check bool) "times sane" true
    (feq write_rec.Access.submit_time 1.0 && feq read_rec.Access.submit_time 2.0);
  Alcotest.(check bool) "read observed the write" true
    (Version_vector.covers read_rec.Access.observed_vector ~origin:0 ~seq:1);
  Alcotest.(check bool) "read result" true
    (feq (Value.to_float read_rec.Access.observed_result) 1.0)

(* --- Commit schemes ------------------------------------------------------ *)

let run_writes_and_quiesce ~config ~n ~writes =
  let sys = System.create ~topology:(topo n) ~config () in
  let engine = System.engine sys in
  List.iteri
    (fun k (replica, delay) ->
      ignore k;
      Engine.schedule engine ~delay (fun () ->
          Replica.submit_write (System.replica sys replica) ~deps:[]
            ~affects:[ unit_weight "c" ]
            ~op:(Op.Add ("x", 1.0))
            ~k:ignore))
    writes;
  System.run ~until:200.0 sys;
  sys

let test_primary_commits_everything () =
  let config =
    {
      Config.default with
      Config.commit_scheme = Config.Primary 0;
      antientropy_period = Some 0.5;
    }
  in
  let sys =
    run_writes_and_quiesce ~config ~n:3
      ~writes:[ (0, 1.0); (1, 1.2); (2, 1.4); (1, 2.0) ]
  in
  for i = 0 to 2 do
    Alcotest.(check int)
      (Printf.sprintf "replica %d committed all" i)
      4
      (Wlog.committed_count (Replica.log (System.replica sys i)))
  done;
  (* Identical commit order everywhere. *)
  let order i =
    List.map (fun (w : Write.t) -> w.Write.id)
      (Wlog.committed (Replica.log (System.replica sys i)))
  in
  Alcotest.(check bool) "same order" true (order 0 = order 1 && order 1 = order 2)

let test_stability_commit_order_is_canonical () =
  let config = { Config.default with Config.antientropy_period = Some 0.5 } in
  let sys =
    run_writes_and_quiesce ~config ~n:3
      ~writes:[ (2, 1.0); (1, 1.2); (0, 1.4); (2, 2.0) ]
  in
  let committed = Wlog.committed (Replica.log (System.replica sys 0)) in
  Alcotest.(check int) "all committed" 4 (List.length committed);
  let times = List.map (fun (w : Write.t) -> w.Write.accept_time) committed in
  Alcotest.(check (list (float 1e-9))) "timestamp order" (List.sort compare times) times

let test_partition_blocks_stability_commit () =
  let config = { Config.default with Config.antientropy_period = Some 0.5 } in
  let sys = System.create ~topology:(topo 3) ~config () in
  let engine = System.engine sys in
  Net.partition (System.net sys) [ 2 ] [ 0; 1 ];
  Engine.schedule engine ~delay:1.0 (fun () ->
      Replica.submit_write (System.replica sys 0) ~deps:[]
        ~affects:[ unit_weight "c" ] ~op:(Op.Add ("x", 1.0)) ~k:ignore);
  System.run ~until:30.0 sys;
  (* Replica 2 never covers past the write's accept time, so nothing commits. *)
  Alcotest.(check int) "stability stalls" 0
    (Wlog.committed_count (Replica.log (System.replica sys 0)));
  (* Heal: commitment resumes. *)
  Net.heal (System.net sys);
  Engine.schedule engine ~delay:1.0 (fun () -> ());
  System.run ~until:90.0 sys;
  Alcotest.(check int) "commits after heal" 1
    (Wlog.committed_count (Replica.log (System.replica sys 0)))

let test_partitioned_strong_read_blocks_then_serves () =
  let config =
    { Config.default with Config.conits = [ Conit.declare "c" ] }
  in
  let sys = System.create ~topology:(topo 2) ~config () in
  let engine = System.engine sys in
  Engine.schedule engine ~delay:0.5 (fun () ->
      Replica.submit_write (System.replica sys 0) ~deps:[]
        ~affects:[ unit_weight "c" ] ~op:(Op.Add ("x", 1.0)) ~k:ignore);
  Engine.schedule engine ~delay:1.0 (fun () ->
      Net.partition (System.net sys) [ 0 ] [ 1 ]);
  let served_at = ref nan in
  Engine.schedule engine ~delay:2.0 (fun () ->
      Replica.submit_read (System.replica sys 1)
        ~deps:[ ("c", Bounds.strong) ]
        ~f:(fun db -> Db.get db "x")
        ~k:(fun v ->
          served_at := Engine.now engine;
          Alcotest.(check bool) "sees the write" true (feq (Value.to_float v) 1.0)));
  Engine.schedule engine ~delay:10.0 (fun () -> Net.heal (System.net sys));
  System.run ~until:60.0 sys;
  Alcotest.(check bool) "blocked across the partition" true (!served_at > 10.0);
  Alcotest.(check bool) "eventually served" true (not (Float.is_nan !served_at));
  Alcotest.(check bool) "no violations" true (Verify.check ~lcp:true sys = [])

(* --- Randomized whole-system property ---------------------------------- *)

(* Any mix of bounds, topologies, workloads and partitions must yield zero
   verifier violations and post-quiescence convergence.  This is the paper's
   central promise, checked end to end. *)
let random_system_ok seed =
  let rng = Tact_util.Prng.create ~seed in
  let n = 2 + Tact_util.Prng.int rng 3 in
  let latency = 0.01 +. Tact_util.Prng.float rng 0.1 in
  let decl_ne =
    match Tact_util.Prng.int rng 3 with
    | 0 -> infinity
    | 1 -> 0.0
    | _ -> 1.0 +. Tact_util.Prng.float rng 8.0
  in
  let config =
    {
      Config.default with
      Config.conits = [ Conit.declare ~ne_bound:decl_ne "c" ];
      commit_scheme =
        (if Tact_util.Prng.bool rng then Config.Stability
         else Config.Primary (Tact_util.Prng.int rng n));
      antientropy_period = Some (0.2 +. Tact_util.Prng.float rng 2.0);
    }
  in
  let sys = System.create ~seed ~topology:(topo ~latency n) ~config () in
  let engine = System.engine sys in
  let duration = 12.0 in
  for i = 0 to n - 1 do
    let r = System.replica sys i in
    let prng = Tact_util.Prng.split rng in
    Tact_workload.Workload.poisson engine ~rng:prng ~rate:1.0 ~until:duration
      (fun () ->
        let bound =
          match Tact_util.Prng.int rng 5 with
          | 0 -> Bounds.weak
          | 1 -> Bounds.make ~oe:(float_of_int (Tact_util.Prng.int rng 5)) ()
          | 2 -> Bounds.make ~st:(0.5 +. Tact_util.Prng.float rng 3.0) ()
          | 3 -> Bounds.make ~ne:(float_of_int (Tact_util.Prng.int rng 6)) ()
          | _ -> Bounds.strong
        in
        if Tact_util.Prng.bool prng then
          Replica.submit_write r
            ~deps:[ ("c", bound) ]
            ~affects:[ unit_weight "c" ]
            ~op:(Op.Add ("x", 1.0))
            ~k:ignore
        else
          Replica.submit_read r
            ~deps:[ ("c", bound) ]
            ~f:(fun db -> Db.get db "x")
            ~k:ignore)
  done;
  (* A mid-run partition of one replica, later healed. *)
  if Tact_util.Prng.bool rng && n > 2 then begin
    let victim = Tact_util.Prng.int rng n in
    let others = List.filter (fun j -> j <> victim) (List.init n Fun.id) in
    Engine.schedule engine ~delay:4.0 (fun () ->
        Net.partition (System.net sys) [ victim ] others);
    Engine.schedule engine ~delay:8.0 (fun () -> Net.heal (System.net sys))
  end;
  System.run ~until:300.0 sys;
  let violations = Verify.check sys in
  let converged = System.converged sys in
  if violations <> [] then
    QCheck.Test.fail_reportf "violations (seed %d): %s" seed
      (Verify.summarize violations);
  if not converged then QCheck.Test.fail_reportf "not converged (seed %d)" seed;
  true

let test_random_system =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"random systems respect bounds and converge"
       ~count:25
       QCheck.(int_bound 100_000)
       random_system_ok)

let base_suite =
  [
    Alcotest.test_case "session consumes spec" `Quick test_session_consumes_spec;
    Alcotest.test_case "read your writes locally" `Quick test_read_your_writes_locally;
    Alcotest.test_case "access records complete" `Quick test_access_records_complete;
    Alcotest.test_case "primary commits everything" `Quick test_primary_commits_everything;
    Alcotest.test_case "stability order canonical" `Quick test_stability_commit_order_is_canonical;
    Alcotest.test_case "partition blocks stability" `Quick test_partition_blocks_stability_commit;
    Alcotest.test_case "strong read across partition" `Quick test_partitioned_strong_read_blocks_then_serves;
    test_random_system;
  ]



(* --- Deadlines (availability knob) -------------------------------------- *)

let test_deadline_timeout_under_partition () =
  let config = { Config.default with Config.conits = [ Conit.declare "c" ] } in
  let sys = System.create ~topology:(topo 2) ~config () in
  let engine = System.engine sys in
  Net.partition (System.net sys) [ 0 ] [ 1 ];
  let timed_out = ref false and served = ref false in
  Engine.schedule engine ~delay:1.0 (fun () ->
      Replica.submit_read ~deadline:3.0
        ~on_timeout:(fun () -> timed_out := true)
        (System.replica sys 1)
        ~deps:[ ("c", Bounds.strong) ]
        ~f:(fun db -> Db.get db "x")
        ~k:(fun _ -> served := true));
  System.run ~until:30.0 sys;
  Alcotest.(check bool) "timed out" true !timed_out;
  Alcotest.(check bool) "never served" false !served;
  Alcotest.(check int) "timeout counted" 1 (System.total_stats sys).Replica.timeouts

let test_deadline_not_fired_when_served () =
  let config = { Config.default with Config.conits = [ Conit.declare "c" ] } in
  let sys = System.create ~topology:(topo 2) ~config () in
  let engine = System.engine sys in
  let timed_out = ref false and served = ref false in
  Engine.schedule engine ~delay:1.0 (fun () ->
      Replica.submit_read ~deadline:10.0
        ~on_timeout:(fun () -> timed_out := true)
        (System.replica sys 1)
        ~deps:[ ("c", Bounds.strong) ]
        ~f:(fun db -> Db.get db "x")
        ~k:(fun _ -> served := true));
  System.run ~until:30.0 sys;
  Alcotest.(check bool) "served within deadline" true !served;
  Alcotest.(check bool) "no timeout" false !timed_out

let deadline_suite =
  [
    Alcotest.test_case "deadline fires under partition" `Quick test_deadline_timeout_under_partition;
    Alcotest.test_case "deadline unused when served" `Quick test_deadline_not_fired_when_served;
  ]



(* --- Config validation ---------------------------------------------------- *)

let test_config_validation () =
  let ok c = Config.validate ~n:3 c = Ok () in
  Alcotest.(check bool) "default valid" true (ok Config.default);
  Alcotest.(check bool) "bad primary" false
    (ok { Config.default with Config.commit_scheme = Config.Primary 7 });
  Alcotest.(check bool) "bad gossip period" false
    (ok { Config.default with Config.antientropy_period = Some 0.0 });
  Alcotest.(check bool) "bad retry" false
    (ok { Config.default with Config.retry_period = 0.0 });
  Alcotest.(check bool) "negative retention" false
    (ok { Config.default with Config.truncate_keep = Some (-1) });
  Alcotest.(check bool) "duplicate conits" false
    (ok { Config.default with Config.conits = [ Conit.declare "c"; Conit.declare "c" ] });
  Alcotest.(check bool) "negative bound" false
    (ok { Config.default with Config.conits = [ Conit.declare ~ne_bound:(-1.0) "c" ] });
  Alcotest.(check bool) "negative oe bound" false
    (ok { Config.default with Config.conits = [ Conit.declare ~oe_bound:(-1.0) "c" ] });
  Alcotest.(check bool) "nan st bound" false
    (ok { Config.default with Config.conits = [ Conit.declare ~st_bound:Float.nan "c" ] });
  Alcotest.(check bool) "gossip target out of range" false
    (ok { Config.default with Config.gossip_plan = Some (fun _ -> [| 3 |]) });
  Alcotest.(check bool) "gossip self target" false
    (ok { Config.default with Config.gossip_plan = Some (fun i -> [| i |]) });
  Alcotest.(check bool) "gossip ring valid" true
    (ok { Config.default with Config.gossip_plan = Some (fun i -> [| (i + 1) mod 3 |]) });
  Alcotest.(check bool) "system rejects invalid" true
    (try
       ignore
         (System.create ~topology:(topo 3)
            ~config:{ Config.default with Config.commit_scheme = Config.Primary 7 }
            ());
       false
     with Invalid_argument _ -> true)

let validation_suite =
  [ Alcotest.test_case "config validation" `Quick test_config_validation ]



(* --- Gossip plans ----------------------------------------------------------- *)

let test_gossip_plan_respected () =
  (* A plan that only ever gossips 0 -> 1: replica 2 stays in the dark. *)
  let config =
    {
      Config.default with
      Config.antientropy_period = Some 0.2;
      gossip_plan = Some (fun i -> if i = 0 then [| 1 |] else [||]);
    }
  in
  let sys = System.create ~topology:(topo 3) ~config () in
  let engine = System.engine sys in
  Engine.schedule engine ~delay:0.1 (fun () ->
      Replica.submit_write (System.replica sys 0) ~deps:[] ~affects:[ unit_weight "c" ]
        ~op:(Op.Add ("x", 1.0)) ~k:ignore);
  System.run ~until:20.0 sys;
  Alcotest.(check int) "replica 1 heard" 1
    (Wlog.num_known (Replica.log (System.replica sys 1)));
  Alcotest.(check int) "replica 2 did not" 0
    (Wlog.num_known (Replica.log (System.replica sys 2)))

let test_gossip_plan_validated () =
  let config =
    {
      Config.default with
      Config.antientropy_period = Some 0.2;
      gossip_plan = Some (fun _ -> [| 99 |]);
    }
  in
  (* Config.validate probes the plan for every replica id, so the bad plan
     is rejected at creation, before any replica starts. *)
  Alcotest.(check bool) "bad plan rejected at create" true
    (try
       ignore (System.create ~topology:(topo 3) ~config ());
       false
     with Invalid_argument _ -> true)

let gossip_suite =
  [
    Alcotest.test_case "gossip plan respected" `Quick test_gossip_plan_respected;
    Alcotest.test_case "gossip plan validated" `Quick test_gossip_plan_validated;
  ]

let suite = base_suite @ deadline_suite @ validation_suite @ gossip_suite
