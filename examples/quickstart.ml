(* Quickstart: three replicas across a simulated WAN share one numeric
   record.  A conit bounds how inaccurate any replica's view may get, and a
   strong read shows the other end of the consistency spectrum.

   Run with: dune exec examples/quickstart.exe *)

open Tact_sim
open Tact_core
open Tact_replica

let () =
  (* Reject malformed conit specs up front (doc/ANALYSIS.md). *)
  Tact_analysis.Guard.install ();
  (* Three replicas, 40 ms one-way latency, conit "record.temp" may be off by
     at most 5 units anywhere, proactively maintained by pushes. *)
  let topology = Topology.uniform ~n:3 ~latency:0.04 ~bandwidth:1_000_000.0 in
  let config =
    {
      Config.default with
      Config.conits = [ Conit.declare ~ne_bound:5.0 (Tact_apps.Sensor.record_conit "temp") ];
      antientropy_period = Some 2.0;
    }
  in
  let sys = System.create ~topology ~config () in
  let engine = System.engine sys in
  let sensors = Array.init 3 (fun i -> Session.create (System.replica sys i)) in

  (* Replicas 0 and 1 report temperature deltas over 30 virtual seconds. *)
  Tact_workload.Workload.staggered engine ~start:0.5 ~gap:1.0 ~count:30 (fun k ->
      let s = sensors.(k mod 2) in
      Tact_apps.Sensor.report s ~record:"temp" ~delta:1.0 ~k:(fun _ -> ()));

  (* Replica 2 queries with two different accuracy requirements. *)
  Engine.schedule engine ~delay:15.0 (fun () ->
      Tact_apps.Sensor.query sensors.(2) ~record:"temp" ~max_error:5.0
        ~k:(fun v ->
          Printf.printf "[t=%5.2fs] casual query  (error <= 5): temp = %g\n"
            (Engine.now engine) v));
  Engine.schedule engine ~delay:15.0 (fun () ->
      Tact_apps.Sensor.query sensors.(2) ~record:"temp" ~max_error:0.0
        ~k:(fun v ->
          Printf.printf "[t=%5.2fs] strong query  (error  = 0): temp = %g\n"
            (Engine.now engine) v));

  System.run ~until:120.0 sys;
  let traffic = System.traffic sys in
  Printf.printf "writes accepted: %d; network: %d messages, %d bytes\n"
    (System.write_count sys) traffic.Net.messages traffic.Net.bytes;
  Printf.printf "replicas converged: %b; bound violations: %d\n"
    (System.converged sys)
    (List.length (Verify.check sys))
