(* The consistency zoo (Section 4.2): eight prior relaxed-consistency models,
   each expressed as a conit instance and shown doing its characteristic
   thing on live replicas.

   Run with: dune exec examples/consistency_zoo.exe *)

open Tact_sim
open Tact_store
open Tact_replica
open Tact_models

let topo n = Topology.uniform ~n ~latency:0.04 ~bandwidth:1_000_000.0

let banner name = Printf.printf "\n--- %s ---\n" name

(* 1. N-ignorant transactions. *)
let n_ignorant () =
  banner "N-ignorant system (N = 2)";
  let config =
    { Config.default with Config.conits = N_ignorant.conits ~n_bound:2.0 }
  in
  let sys = System.create ~topology:(topo 3) ~config () in
  let engine = System.engine sys in
  let sessions = Array.init 3 (fun i -> Session.create (System.replica sys i)) in
  Tact_workload.Workload.staggered engine ~start:0.1 ~gap:0.3 ~count:12 (fun k ->
      N_ignorant.transaction sessions.(k mod 3) ~op:(Op.Add ("t", 1.0)) ~k:ignore);
  let worst = ref 0.0 in
  Engine.every engine ~period:0.2 (fun () ->
      for i = 0 to 2 do
        worst := Float.max !worst (N_ignorant.ignorance sys ~replica:i)
      done;
      Engine.now engine < 5.0);
  System.run ~until:30.0 sys;
  Printf.printf "12 transactions; worst observed ignorance %.0f (bound 2 + in-flight)\n" !worst

(* 2. Conflict-matrix bank account. *)
let conflict_matrix () =
  banner "conflict matrix (withdrawals behave 1SR)";
  let matrix = [| [| false; true |]; [| true; true |] |] in
  let config =
    {
      Config.default with
      Config.conits = Conflict_matrix.conits matrix;
      antientropy_period = Some 0.3;
      initial_db = [ ("balance", Value.Float 100.0) ];
    }
  in
  let sys = System.create ~topology:(topo 2) ~config () in
  let engine = System.engine sys in
  let withdraw =
    Op.guarded ~name:"withdraw"
      ~check:(fun db -> Db.get_float db "balance" >= 60.0)
      ~apply:(fun db ->
        Db.add db "balance" (-60.0);
        Db.get db "balance")
      ~alt:(fun _ -> "insufficient funds")
      ()
  in
  (* Two replicas race to withdraw 60 from a balance of 100. *)
  for i = 0 to 1 do
    let s = Session.create (System.replica sys i) in
    Engine.schedule engine ~delay:0.1 (fun () ->
        Conflict_matrix.invoke s ~matrix ~method_:1 ~op:withdraw ~k:(fun o ->
            Printf.printf "  replica %d withdraw: %s\n" i
              (match o with
              | Op.Applied v -> Printf.sprintf "ok, balance %s" (Value.to_string v)
              | Op.Conflict r -> r)))
  done;
  System.run ~until:60.0 sys;
  Printf.printf "final committed balance: %g (never negative)\n"
    (Db.get_float (Wlog.committed_db (Replica.log (System.replica sys 0))) "balance")

(* 3. Lazy replication's forced transactions. *)
let lazy_replication () =
  banner "lazy replication (forced txns, identical order everywhere)";
  let config =
    {
      Config.default with
      Config.conits = Lazy_replication.conits;
      antientropy_period = Some 0.3;
    }
  in
  let sys = System.create ~topology:(topo 3) ~config () in
  let engine = System.engine sys in
  for i = 0 to 2 do
    let s = Session.create (System.replica sys i) in
    Engine.schedule engine ~delay:(0.1 +. (0.05 *. float_of_int i)) (fun () ->
        Lazy_replication.forced s ~op:(Op.Append ("seq", Value.Int i)) ~k:ignore)
  done;
  System.run ~until:60.0 sys;
  let order r =
    Value.to_string (Db.get (Wlog.committed_db (Replica.log (System.replica sys r))) "seq")
  in
  Printf.printf "committed order at replicas 0/1/2: %s | %s | %s\n" (order 0) (order 1) (order 2)

(* 4. Timed / delta consistency. *)
let timed () =
  banner "delta consistency (no read older than 0.5s)";
  let sys = System.create ~topology:(topo 2) ~config:Config.default () in
  let engine = System.engine sys in
  let s0 = Session.create (System.replica sys 0) in
  let s1 = Session.create (System.replica sys 1) in
  Engine.schedule engine ~delay:0.1 (fun () ->
      Timed.write s0 ~op:(Op.Add ("x", 1.0)) ~k:ignore);
  Engine.schedule engine ~delay:5.0 (fun () ->
      Timed.read s1 ~delta:0.5
        ~f:(fun db -> Db.get db "x")
        ~k:(fun v ->
          Printf.printf "delta-read at t=%.2fs sees x = %s (write was 4.9s old)\n"
            (Engine.now engine) (Value.to_string v)));
  System.run ~until:30.0 sys

(* 5. Quasi-copy version condition. *)
let quasi_copy () =
  banner "quasi-copy (at most 2 versions behind)";
  let sys = System.create ~topology:(topo 2) ~config:Config.default () in
  let engine = System.engine sys in
  let s0 = Session.create (System.replica sys 0) in
  let s1 = Session.create (System.replica sys 1) in
  Tact_workload.Workload.staggered engine ~start:0.1 ~gap:0.2 ~count:5 (fun _ ->
      Quasi_copy.write_numeric s0 ~key:"quote" ~delta:1.0 ~k:ignore);
  Engine.schedule engine ~delay:2.0 (fun () ->
      Quasi_copy.read_version s1 ~key:"quote" ~versions:2.0 ~k:(fun v ->
          Printf.printf "version-bounded read sees quote = %s (5 updates happened)\n"
            (Value.to_string v)));
  System.run ~until:30.0 sys

(* 6. ESR epsilon-query. *)
let esr () =
  banner "epsilon-serializability (import limit $10)";
  let config =
    { Config.default with Config.conits = Esr.conits ~items:[ "acct" ] ~epsilon:10.0 }
  in
  let sys = System.create ~topology:(topo 2) ~config () in
  let engine = System.engine sys in
  let s0 = Session.create (System.replica sys 0) in
  let s1 = Session.create (System.replica sys 1) in
  Tact_workload.Workload.staggered engine ~start:0.1 ~gap:0.3 ~count:10 (fun _ ->
      Esr.update s0 ~item:"acct" ~delta:4.0 ~k:ignore);
  Engine.schedule engine ~delay:4.0 (fun () ->
      Esr.epsilon_query s1 ~items:[ "acct" ] ~epsilon:10.0 ~k:(function
        | [ v ] ->
          Printf.printf "epsilon-query sees $%.0f (true total $40, import <= $10)\n" v
        | _ -> ()));
  System.run ~until:30.0 sys

(* 7. Memory-model DAG. *)
let memdag () =
  banner "memory-model DAG (diamond dependency across replicas)";
  let dag = { Memdag.nodes = 4; edges = [ (0, 1); (0, 2); (1, 3); (2, 3) ] } in
  let config = { Config.default with Config.antientropy_period = Some 0.2 } in
  let sys = System.create ~topology:(topo 3) ~config () in
  let engine = System.engine sys in
  let submit ~at ~replica ~node =
    Engine.schedule engine ~delay:at (fun () ->
        let s = Session.create (System.replica sys replica) in
        Memdag.submit s ~dag ~node ~op:Op.Noop ~k:(fun _ ->
            Printf.printf "  node %d executed at replica %d (t=%.2fs)\n" node replica
              (Engine.now engine)))
  in
  submit ~at:0.1 ~replica:0 ~node:0;
  submit ~at:0.3 ~replica:1 ~node:1;
  submit ~at:0.3 ~replica:2 ~node:2;
  submit ~at:1.0 ~replica:0 ~node:3;
  System.run ~until:30.0 sys

let () =
  (* Reject malformed conit specs up front (doc/ANALYSIS.md). *)
  Tact_analysis.Guard.install ();
  n_ignorant ();
  conflict_matrix ();
  lazy_replication ();
  timed ();
  quasi_copy ();
  esr ();
  memdag ();
  print_newline ()
