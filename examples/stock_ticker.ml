(* Dynamic content distribution with SUBJECTIVE weights (Section 4.1's
   dynamic-web-page discussion): replicated stock quotes where the numerical
   weight of each update is the actual price movement, so a conit bound is a
   hard dollar bound on how stale a replica's quote can be.

   Small drifts accumulate lazily; a big move blows the budget at once and is
   pushed immediately — exactly the "score changes near the end of a close
   game matter more" idea from the paper.

   Run with: dune exec examples/stock_ticker.exe *)

open Tact_sim
open Tact_store
open Tact_core
open Tact_replica

let quote_conit = "quote.ACME"

let () =
  (* Reject malformed conit specs up front (doc/ANALYSIS.md). *)
  Tact_analysis.Guard.install ();
  let n = 3 in
  let topology = Topology.uniform ~n ~latency:0.06 ~bandwidth:500_000.0 in
  (* Any replica's quote may be off by at most $1.00. *)
  let config =
    {
      Config.default with
      Config.conits = [ Conit.declare ~ne_bound:1.0 quote_conit ];
      initial_db = [ ("ACME", Value.Float 100.0) ];
    }
  in
  let sys = System.create ~topology ~config () in
  let engine = System.engine sys in
  let exchange = Session.create (System.replica sys 0) in
  let rng = Tact_util.Prng.create ~seed:77 in

  (* The exchange feeds price movements: mostly cents, occasionally a jump.
     The movement itself is the numerical weight. *)
  let true_price = ref 100.0 in
  Tact_workload.Workload.poisson engine ~rng ~rate:4.0 ~until:30.0 (fun () ->
      let move =
        if Tact_util.Prng.int rng 20 = 0 then
          Tact_util.Prng.uniform_in rng ~lo:(-3.0) ~hi:3.0 (* a jump *)
        else Tact_util.Prng.uniform_in rng ~lo:(-0.08) ~hi:0.08 (* a tick *)
      in
      true_price := !true_price +. move;
      Session.affect_conit exchange quote_conit ~nweight:move ~oweight:0.0;
      Session.write exchange (Op.Add ("ACME", move)) ~k:ignore);

  (* A dashboard at replica 2 samples its local quote each second. *)
  let worst = ref 0.0 in
  Engine.every engine ~period:1.0 (fun () ->
      let local = Db.get_float (Replica.db (System.replica sys 2)) "ACME" in
      let err = Float.abs (local -. !true_price) in
      if err > !worst then worst := err;
      if Engine.now engine < 10.0 then
        Printf.printf "[t=%4.1fs] true $%.2f | replica 2 sees $%.2f (off $%.2f)\n"
          (Engine.now engine) !true_price local err;
      Engine.now engine < 30.0);

  System.run ~until:90.0 sys;
  let traffic = System.traffic sys in
  Printf.printf
    "\nworst quote error at replica 2: $%.2f (bound was $1.00 per conit;\n\
     in-flight pushes add up to one tick beyond it)\n"
    !worst;
  Printf.printf "network cost: %d messages, %d bytes; violations: %d\n"
    traffic.Net.messages traffic.Net.bytes
    (List.length (Verify.check sys))
