(* Airline reservation (Section 4.1): bounding the rate of surprise aborts by
   bounding relative numerical error on the available-seat conits.

   Two configurations book out the same small plane; the bounded one keeps
   replicas' seat views within 10% of truth, so almost no reservation that
   looked fine turns out to have lost its seat at commit.

   Run with: dune exec examples/flight_booking.exe *)

let book ~label ~ne_rel =
  let r =
    Tact_apps.Airline.run ~seed:404 ~n:4 ~flights:1 ~seats:120 ~rate:1.5
      ~duration:50.0 ~ne_rel ()
  in
  Printf.printf
    "%-22s attempts %3d | surprise aborts %2d (%.1f%%) | measured rel-NE %.3f | %d msgs\n"
    label r.attempts r.final_conflicts
    (100.0 *. r.conflict_rate)
    r.mean_rel_ne r.messages

let () =
  (* Reject malformed conit specs up front (doc/ANALYSIS.md). *)
  Tact_analysis.Guard.install ();
  Printf.printf "booking a 120-seat flight from 4 replicas for 50s...\n";
  book ~label:"unbounded views:" ~ne_rel:infinity;
  book ~label:"rel-NE <= 0.10:" ~ne_rel:0.10;
  print_endline
    "(the paper: P(conflict) ~= relative numerical error, so bounding one\n\
     bounds the other — Section 4.1)"
