(* QoS load balancing (the paper's third sample application): how accurate do
   load views need to be?  The same request stream is balanced under three
   NE bounds on the per-server load conits.

   Run with: dune exec examples/load_balancer.exe *)

let balance ~label ~ne_bound =
  let r =
    Tact_apps.Qos.run ~seed:99 ~n:4 ~rate:4.0 ~service_time:2.0 ~duration:40.0
      ~ne_bound ()
  in
  Printf.printf
    "%-18s %4d requests | %5.1f%% misrouted | imbalance %.2f | %5d msgs\n"
    label r.requests
    (100.0 *. r.misroute_rate)
    r.mean_imbalance r.messages

let () =
  (* Reject malformed conit specs up front (doc/ANALYSIS.md). *)
  Tact_analysis.Guard.install ();
  Printf.printf "balancing requests across 4 replicated web servers for 40s...\n";
  balance ~label:"exact views:" ~ne_bound:1.0;
  balance ~label:"NE <= 4:" ~ne_bound:4.0;
  balance ~label:"uncoordinated:" ~ne_bound:infinity;
  print_endline
    "(tighter load-view bounds buy routing quality with dissemination traffic)"
