(* The paper's Figure 5 scenario, executably: a replicated bulletin board
   where Alice cares more about her friends' posts than about the rest.

   PostMessage affects conit "AllMsg" (and "MsgFromFriends" when the author
   is a friend); Alice's ReadMessages requires (ne=3, oe=0, st=60) on
   "MsgFromFriends" but only (ne=10, oe=5, st=9999) on "AllMsg" — exactly the
   weight/bound specification printed in the paper.

   Run with: dune exec examples/bulletin_board.exe *)

open Tact_sim
open Tact_store
open Tact_core
open Tact_replica
open Tact_apps

let () =
  (* Reject malformed conit specs up front (doc/ANALYSIS.md). *)
  Tact_analysis.Guard.install ();
  let n = 4 in
  let friends = [ 1; 2 ] in
  let topology = Topology.uniform ~n ~latency:0.05 ~bandwidth:500_000.0 in
  let config =
    {
      Config.default with
      Config.conits =
        [ Conit.declare ~ne_bound:10.0 Bboard.conit_all;
          Conit.declare ~ne_bound:3.0 Bboard.conit_friends ];
      antientropy_period = Some 5.0;
    }
  in
  let sys = System.create ~topology ~config () in
  let engine = System.engine sys in
  let rng = Tact_util.Prng.create ~seed:2026 in

  (* Everyone posts; friends' posts also bear on Alice's conit. *)
  for author = 0 to n - 1 do
    let session = Session.create (System.replica sys author) in
    let prng = Tact_util.Prng.split rng in
    Tact_workload.Workload.poisson engine ~rng:prng ~rate:0.8 ~until:60.0
      (fun () ->
        let text = Printf.sprintf "post by %d at %.1fs" author (Engine.now engine) in
        Bboard.post session ~author ~friends ~text ~k:ignore)
  done;

  (* Alice reads at replica 3 every 10 seconds with Figure 5's bounds. *)
  let alice = Session.create (System.replica sys 3) in
  let all_bound = Bounds.make ~ne:10.0 ~oe:5.0 ~st:9999.0 () in
  let friends_bound = Bounds.make ~ne:3.0 ~oe:0.0 ~st:60.0 () in
  Tact_workload.Workload.staggered engine ~start:10.0 ~gap:10.0 ~count:5 (fun k ->
      Bboard.read_messages alice ~all_bound ~friends_bound ~k:(fun v ->
          let messages = Value.to_list v in
          let from_friends =
            List.length
              (List.filter
                 (function
                   | Value.List [ Value.Int a; _ ] -> List.mem a friends
                   | _ -> false)
                 messages)
          in
          Printf.printf
            "[t=%5.1fs] Alice's read #%d: %d messages visible (%d from friends)\n"
            (Engine.now engine) (k + 1) (List.length messages) from_friends));

  System.run ~until:180.0 sys;
  Printf.printf "total posts: %d; bound violations: %d; converged: %b\n"
    (System.write_count sys)
    (List.length (Verify.check sys))
    (System.converged sys)
