(* Shared editor (Section 4.1): per-paragraph conits measure the amount of
   unseen remote modification (numerical error, weighted by character count),
   the instability of the view (order error), and propagation delay
   (staleness).  A network partition shows bounded reads blocking until the
   document can honestly satisfy them.

   Run with: dune exec examples/collaborative_editor.exe *)

open Tact_sim
open Tact_replica
open Tact_apps

let () =
  (* Reject malformed conit specs up front (doc/ANALYSIS.md). *)
  Tact_analysis.Guard.install ();
  let topology = Topology.uniform ~n:2 ~latency:0.08 ~bandwidth:250_000.0 in
  let config = { Config.default with Config.antientropy_period = Some 1.0 } in
  let sys = System.create ~topology ~config () in
  let engine = System.engine sys in
  let author0 = Session.create (System.replica sys 0) in
  let author1 = Session.create (System.replica sys 1) in

  (* Both authors type into paragraph 0. *)
  Tact_workload.Workload.staggered engine ~start:0.5 ~gap:1.0 ~count:20 (fun k ->
      let s, who = if k mod 2 = 0 then (author0, 0) else (author1, 1) in
      Editor.insert_text s ~para:0 ~author:who
        ~text:(Printf.sprintf "[%d:%d]" who k)
        ~k:ignore);
  Engine.schedule engine ~delay:12.0 (fun () ->
      Editor.delete_chars author0 ~para:0 ~author:0 ~count:5 ~k:ignore);

  (* Partition the two sites between t=5 and t=15. *)
  Engine.schedule engine ~delay:5.0 (fun () ->
      print_endline "[t= 5.0s] -- network partition --";
      Net.partition (System.net sys) [ 0 ] [ 1 ]);
  Engine.schedule engine ~delay:15.0 (fun () ->
      print_endline "[t=15.0s] -- partition healed --";
      Net.heal (System.net sys));

  (* A reviewer at replica 1 insists on at most 12 unseen characters and a
     fully stable (committed) view; during the partition this read blocks. *)
  Engine.schedule engine ~delay:8.0 (fun () ->
      let t0 = Engine.now engine in
      Printf.printf "[t= 8.0s] reviewer asks for a stable view (<=12 unseen chars)...\n";
      Editor.read_paragraph author1 ~para:0 ~max_unseen_chars:12.0
        ~max_instability:0.0 ~max_delay:infinity ~k:(fun text ->
          Printf.printf
            "[t=%5.1fs] reviewer's stable view arrived after %.1fs: %d chars\n"
            (Engine.now engine)
            (Engine.now engine -. t0)
            (String.length text)));

  (* A casual reader takes whatever is local, instantly. *)
  Engine.schedule engine ~delay:8.0 (fun () ->
      Editor.read_paragraph author1 ~para:0 ~max_unseen_chars:infinity
        ~max_instability:infinity ~max_delay:infinity ~k:(fun text ->
          Printf.printf "[t= 8.0s] casual reader sees %d chars immediately\n"
            (String.length text)));

  System.run ~until:120.0 sys;
  let doc r = List.hd (Editor.document (Replica.db (System.replica sys r)) ~paras:1) in
  Printf.printf "final document identical on both replicas: %b (%d chars)\n"
    (String.equal (doc 0) (doc 1))
    (String.length (doc 0));
  Printf.printf "bound violations: %d\n" (List.length (Verify.check sys))
