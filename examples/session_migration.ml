(* Session guarantees across replica migration: a mobile user posts at one
   site, roams to another, and reads their own post — or doesn't, depending
   on the guarantees their session carries.  (Bayou's session guarantees,
   layered over the conit machinery; the substrate the paper builds on.)

   Run with: dune exec examples/session_migration.exe *)

open Tact_sim
open Tact_store
open Tact_replica

let roam ~label ~guarantees =
  let topology = Topology.uniform ~n:2 ~latency:0.08 ~bandwidth:250_000.0 in
  (* No gossip: the second site learns nothing unless a guarantee forces it. *)
  let sys = System.create ~topology ~config:Config.default () in
  let engine = System.engine sys in
  let user = Session.create ~guarantees (System.replica sys 0) in
  Engine.schedule engine ~delay:0.5 (fun () ->
      Session.write user (Op.Append ("wall", Value.Str "my post")) ~k:(fun _ ->
          (* The user roams to site 1 and immediately reads their wall. *)
          Session.migrate user (System.replica sys 1);
          let t0 = Engine.now engine in
          Session.read user
            (fun db -> Db.get db "wall")
            ~k:(fun v ->
              Printf.printf "%-28s sees %d post(s) after %.3fs at the new site\n"
                label
                (List.length (Value.to_list v))
                (Engine.now engine -. t0))));
  System.run ~until:30.0 sys

let () =
  (* Reject malformed conit specs up front (doc/ANALYSIS.md). *)
  Tact_analysis.Guard.install ();
  print_endline "a user posts at site 0, roams to site 1, reads their wall:";
  roam ~label:"plain session:" ~guarantees:[];
  roam ~label:"read-your-writes session:" ~guarantees:[ Session.Read_your_writes ];
  print_endline
    "(the guarantee makes the new site pull the user's writes before serving\n\
     — consistency that follows the client, not the replica)"
